"""Exporters: dict/JSONL snapshots, Prometheus text, Chrome traces.

Three ways out of the process, matched to three consumers:

* :meth:`MetricsRegistry.to_dict` / :class:`JsonlSink` — machine-diffable
  snapshots (the benchmark harness embeds one in every ``BENCH_*.json``).
* :func:`prometheus_text` — the text exposition format, for eyeballing
  or scraping.
* :func:`write_chrome_trace` — the tracer's spans as trace-event JSON
  for ``chrome://tracing`` / Perfetto.
"""

from __future__ import annotations

import json
import math
import re
import time
from pathlib import Path

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Tracer

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str) -> str:
    name = _NAME_SANITIZER.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _escape_label_value(value: object) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_text(labels: dict[str, str], extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = [*sorted(labels.items()), *extra]
    if not items:
        return ""
    rendered = ",".join(
        f'{_metric_name(k)}="{_escape_label_value(v)}"' for k, v in items
    )
    return "{" + rendered + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"  # Prometheus spelling; Python's repr says 'nan'
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    lines: list[str] = []
    for name, instruments in registry.families().items():
        metric = _metric_name(name)
        kind = registry.kind_of(name)
        lines.append(f"# TYPE {metric} {kind}")
        for instrument in instruments:
            if isinstance(instrument, Histogram):
                for bound, count in instrument.cumulative_buckets():
                    le = "+Inf" if math.isinf(bound) else _format_value(bound)
                    lines.append(
                        f"{metric}_bucket"
                        f"{_label_text(instrument.labels, (('le', le),))} {count}"
                    )
                lines.append(
                    f"{metric}_sum{_label_text(instrument.labels)} "
                    f"{_format_value(instrument.sum)}"
                )
                lines.append(
                    f"{metric}_count{_label_text(instrument.labels)} "
                    f"{instrument.count}"
                )
            elif isinstance(instrument, (Counter, Gauge)):
                lines.append(
                    f"{metric}{_label_text(instrument.labels)} "
                    f"{_format_value(instrument.value)}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def registry_to_dict(registry: MetricsRegistry) -> dict[str, object]:
    """Alias for :meth:`MetricsRegistry.to_dict` (symmetry with the others)."""
    return registry.to_dict()


class JsonlSink:
    """Appends one JSON object per snapshot to a file.

    Each line is ``{"t": <unix seconds>, "metrics": {...}}`` — a cheap
    time-series of the whole registry, greppable and pandas-loadable.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def write(self, registry: MetricsRegistry, timestamp: float | None = None) -> None:
        record = {
            "t": time.time() if timestamp is None else timestamp,
            "metrics": registry.to_dict(),
        }
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def write_chrome_trace(tracer: Tracer, path: str | Path) -> Path:
    """Write the tracer's spans as Chrome trace-event JSON; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(tracer.to_chrome_trace()), encoding="utf-8")
    return path
