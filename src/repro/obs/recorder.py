"""The black-box flight recorder.

A fixed-size ring buffer of structured protocol events — uplinks,
downlinks, commits, wakeups, shard dispatch/merge, fault injections,
oracle checks — that costs almost nothing while armed (one deque append
per event, old events silently overwritten) and tells the last-N-cycles
story when something goes wrong.  Chaos failures ship their recorder
dump inside ``CHAOS_REPORT.json`` instead of just a counter delta; an
oracle :class:`~repro.check.Divergence` or a
:class:`~repro.parallel.SimulatedWorkerCrash` can :meth:`trigger` a
dump automatically.

The ring-size/overhead trade: each slot holds one small tuple, so the
default 4096-slot ring is a few hundred KB at worst and the append cost
is independent of capacity.  A bigger ring only buys a longer look-back
window — it never slows the hot path — while a smaller one bounds dump
size for embedding in reports.

Telemetry-off mode is a type: :data:`NULL_RECORDER` no-ops every call.
"""

from __future__ import annotations

import json
import time
from collections import deque
from pathlib import Path

#: Default ring capacity — roughly 25-100 chaos cycles of look-back.
DEFAULT_RING_SIZE = 4096


class FlightRecorder:
    """Bounded ring of ``(seq, t, cycle, kind, data)`` events."""

    enabled = True

    def __init__(
        self, capacity: int = DEFAULT_RING_SIZE, clock=time.monotonic
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._ring: deque[tuple] = deque(maxlen=capacity)
        self._clock = clock
        self.cycle = 0
        self.recorded = 0
        #: The first trigger reason, if any (a run is dumped only once).
        self.triggered: str | None = None
        #: Optional path prefix; when set, :meth:`trigger` writes the
        #: dump immediately (``<prefix>.jsonl`` + ``<prefix>.trace.json``).
        self.auto_dump_prefix: str | Path | None = None

    # -- hot path -------------------------------------------------------

    def record(self, kind: str, /, **data) -> None:
        """Append one event.  O(1); old events fall off the ring."""
        self.recorded += 1
        self._ring.append(
            (self.recorded, self._clock(), self.cycle, kind, data)
        )

    def advance_cycle(self) -> None:
        """Stamp subsequent events with the next evaluation cycle."""
        self.cycle += 1

    # -- triggering -----------------------------------------------------

    def trigger(self, reason: str, /, **data) -> "list[Path] | None":
        """Mark the run as needing a dump (oracle divergence, worker
        crash, chaos failure, explicit call).  Records the trigger as an
        event; if :attr:`auto_dump_prefix` is set, writes the dump on
        the *first* trigger and returns the written paths."""
        payload = {"reason": reason}
        payload.update(data)  # a caller's own "reason" key wins
        self.record("trigger", **payload)
        if self.triggered is not None:
            return None
        self.triggered = reason
        if self.auto_dump_prefix is not None:
            return self.dump(self.auto_dump_prefix)
        return None

    # -- read side ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def overwritten(self) -> int:
        """Events that fell off the ring before any dump."""
        return self.recorded - len(self._ring)

    def events(self) -> list[dict[str, object]]:
        """The ring's events, oldest first, as JSON-ready dicts.

        The envelope keys (``seq``/``t``/``cycle``/``kind``) win over
        same-named data keys, so an event can never masquerade as a
        different kind in a dump."""
        return [
            {**data, "seq": seq, "t": t, "cycle": cycle, "kind": kind}
            for seq, t, cycle, kind, data in self._ring
        ]

    def clear(self) -> None:
        self._ring.clear()
        self.recorded = 0
        self.triggered = None

    # -- dumps ----------------------------------------------------------

    def write_jsonl(self, path: str | Path) -> Path:
        """One JSON object per event, oldest first; returns the path."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for event in self.events():
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return path

    def to_chrome_trace(self) -> dict[str, object]:
        """The ring as Chrome instant events ("ph": "i"), so a recorder
        dump overlays on the tracer's span view in the same viewer."""
        ring = list(self._ring)
        origin = ring[0][1] if ring else 0.0
        trace_events = [
            {
                "name": kind,
                "ph": "i",
                "s": "g",
                "ts": (t - origin) * 1e6,
                "pid": 0,
                "tid": 0,
                "cat": "flight",
                "args": {**data, "seq": seq, "cycle": cycle},
            }
            for seq, t, cycle, kind, data in ring
        ]
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def dump(self, prefix: str | Path) -> list[Path]:
        """Write ``<prefix>.jsonl`` + ``<prefix>.trace.json``; returns
        both paths."""
        prefix = Path(prefix)
        jsonl = self.write_jsonl(prefix.with_suffix(".jsonl"))
        trace = prefix.with_suffix(".trace.json")
        trace.write_text(json.dumps(self.to_chrome_trace()), encoding="utf-8")
        return [jsonl, trace]


class NullFlightRecorder(FlightRecorder):
    """Recorder off: every call is a no-op, nothing is retained."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def record(self, kind: str, /, **data) -> None:  # type: ignore[override]
        pass

    def advance_cycle(self) -> None:  # type: ignore[override]
        pass

    def trigger(self, reason: str, /, **data):  # type: ignore[override]
        return None


NULL_RECORDER = NullFlightRecorder()
