"""Metric instruments and the registry that owns them.

Three instrument kinds, modelled after the Prometheus data model but
dependency-free and tuned for a single-process simulation server:

* :class:`Counter` — a monotonically increasing float (work done,
  bytes shipped, updates emitted).
* :class:`Gauge` — a value that goes up and down (queue depth, savings
  ratio, resident pages).
* :class:`Histogram` — fixed upper-bound buckets plus sum/count;
  ``observe()`` is a ``bisect`` over a small tuple, so the hot-path
  cost is O(log buckets) with no allocation.

A :class:`MetricsRegistry` hands out instruments by ``(name, labels)``
and get-or-creates, so instrumented components can resolve a handle
once and hit only attribute adds afterwards.  :class:`NullRegistry` is
the "telemetry off" mode: it returns shared no-op instruments with the
same API, which is what the overhead benchmark gates against.

A process-wide default registry exists for zero-config use
(:func:`default_registry`); components that need isolation (every
engine/server/pool owns its own counters) create private registries
and accept an injected one for aggregation.
"""

from __future__ import annotations

from bisect import bisect_left
from threading import Lock

#: Default histogram buckets for second-valued latencies (upper bounds).
DEFAULT_SECONDS_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Empty-label sentinel shared by all unlabelled instruments.
_NO_LABELS: tuple[tuple[str, str], ...] = ()


def _label_key(labels: dict[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return _NO_LABELS
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing value.  ``inc()`` is the hot path."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: dict[str, str] | None = None):
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount

    def snapshot(self) -> dict[str, object]:
        return {"labels": self.labels, "value": self.value}


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, str] | None = None):
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, amount: float) -> None:
        self.value += amount

    def snapshot(self) -> dict[str, object]:
        return {"labels": self.labels, "value": self.value}


class Histogram:
    """Fixed-bucket histogram: per-bucket counts, sum, and count.

    ``bounds`` are inclusive upper bounds; one implicit +Inf bucket
    catches everything beyond the last bound (Prometheus ``le`` model).
    Internally the counts are per-bucket; exporters cumulate them.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "sum", "count")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        bounds: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
        labels: dict[str, str] | None = None,
    ):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name} bounds must be sorted and non-empty")
        self.name = name
        self.labels = dict(labels) if labels else {}
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the bucket counts.

        Linear interpolation inside the bucket holding the rank
        (Prometheus ``histogram_quantile`` semantics); observations in
        the +Inf bucket clamp to the last finite bound.  0.0 when the
        histogram is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        running = 0
        lower = 0.0
        for bound, n in zip(self.bounds, self.bucket_counts):
            if running + n >= rank and n > 0:
                fraction = (rank - running) / n
                return lower + (bound - lower) * max(0.0, min(1.0, fraction))
            running += n
            lower = bound
        return self.bounds[-1]

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.bucket_counts[-1]))
        return out

    def snapshot(self) -> dict[str, object]:
        return {
            "labels": self.labels,
            "sum": self.sum,
            "count": self.count,
            "mean": self.mean,
            "buckets": [
                {"le": bound, "count": n} for bound, n in self.cumulative_buckets()
            ],
        }


class _NullInstrument:
    """One object that satisfies every instrument API and does nothing.

    Shared across all names and labels — handing the same instance out
    everywhere is what makes the no-op registry free on the hot path.
    """

    __slots__ = ()

    kind = "null"
    name = "null"
    labels: dict[str, str] = {}
    value = 0.0
    sum = 0.0
    count = 0
    mean = 0.0
    bounds: tuple[float, ...] = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def snapshot(self) -> dict[str, object]:
        return {"labels": {}, "value": 0.0}


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Owns instruments; get-or-create by ``(name, labels)``.

    The registry itself stays off the hot path: components resolve
    handles once (construction time or first use) and then touch only
    the instrument.  Lookups are also cheap enough to call per
    evaluation (one dict hit), which the per-cycle samplers rely on.
    """

    #: Telemetry-on flag; samplers consult it to skip whole blocks
    #: (not just individual observes) under the no-op registry.
    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}
        self._kinds: dict[str, str] = {}
        self._lock = Lock()

    # -- instrument factories ------------------------------------------

    def counter(self, name: str, labels: dict[str, str] | None = None) -> Counter:
        return self._get_or_create(name, labels, Counter, "counter")

    def gauge(self, name: str, labels: dict[str, str] | None = None) -> Gauge:
        return self._get_or_create(name, labels, Gauge, "gauge")

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = DEFAULT_SECONDS_BUCKETS,
        labels: dict[str, str] | None = None,
    ) -> Histogram:
        key = (name, _label_key(labels))
        found = self._instruments.get(key)
        if found is not None:
            self._check_kind(name, "histogram")
            return found  # type: ignore[return-value]
        with self._lock:
            found = self._instruments.get(key)
            if found is not None:
                return found  # type: ignore[return-value]
            self._check_kind(name, "histogram")
            instrument = Histogram(name, buckets, labels)
            self._instruments[key] = instrument
            return instrument

    def _get_or_create(self, name, labels, cls, kind):
        key = (name, _label_key(labels))
        found = self._instruments.get(key)
        if found is not None:
            self._check_kind(name, kind)
            return found
        with self._lock:
            found = self._instruments.get(key)
            if found is not None:
                return found
            self._check_kind(name, kind)
            instrument = cls(name, labels)
            self._instruments[key] = instrument
            return instrument

    def _check_kind(self, name: str, kind: str) -> None:
        existing = self._kinds.get(name)
        if existing is None:
            self._kinds[name] = kind
        elif existing != kind:
            raise TypeError(
                f"metric {name!r} already registered as {existing}, not {kind}"
            )

    # -- introspection / export ----------------------------------------

    def __iter__(self):
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    def kind_of(self, name: str) -> str | None:
        return self._kinds.get(name)

    def families(self) -> dict[str, list[object]]:
        """Instruments grouped by metric name, label-sorted within."""
        grouped: dict[str, list[object]] = {}
        for (name, __), instrument in sorted(self._instruments.items()):
            grouped.setdefault(name, []).append(instrument)
        return grouped

    def to_dict(self) -> dict[str, object]:
        """A JSON-ready snapshot of every instrument."""
        out: dict[str, object] = {}
        for name, instruments in self.families().items():
            out[name] = {
                "type": self._kinds[name],
                "series": [i.snapshot() for i in instruments],  # type: ignore[attr-defined]
            }
        return out

    def value_of(self, name: str, labels: dict[str, str] | None = None) -> float:
        """Convenience: the current value of one counter/gauge (0.0 if absent)."""
        instrument = self._instruments.get((name, _label_key(labels)))
        return getattr(instrument, "value", 0.0) if instrument else 0.0


class NullRegistry(MetricsRegistry):
    """Telemetry off: every factory returns the shared no-op instrument."""

    enabled = False

    def counter(self, name, labels=None):  # type: ignore[override]
        return NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name, labels=None):  # type: ignore[override]
        return NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name, buckets=DEFAULT_SECONDS_BUCKETS, labels=None):  # type: ignore[override]
        return NULL_INSTRUMENT  # type: ignore[return-value]


NULL_REGISTRY = NullRegistry()

_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide default registry (zero-config aggregation point)."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
