"""Unified telemetry: metrics registry, cycle tracing, exporters.

The server side of the paper (SINA evaluating every ``T`` seconds,
incremental +/- updates downstream) is only operable if you can see
where cycles spend time, which grid cells run hot, and what the
incremental protocol saves on the wire.  This package is that layer —
dependency-free, cheap enough to leave on:

* :class:`MetricsRegistry` — named counters, gauges, fixed-bucket
  histograms; O(1)-ish hot path (attribute adds, one bisect for
  histograms); get-or-create handles; a process-wide default via
  :func:`default_registry`.
* :class:`Tracer` — per-evaluation-cycle spans (phase by phase, plus
  server downlink/recovery), nestable with ``with``, exception-safe.
* Exporters — :meth:`MetricsRegistry.to_dict` / :class:`JsonlSink`,
  :func:`prometheus_text`, and :func:`write_chrome_trace` for
  ``chrome://tracing``.

Telemetry-off mode is a type, not a flag check in every call site:
:data:`NULL_REGISTRY` / :class:`NullTracer` hand out shared no-op
instruments, which is what ``benchmarks/bench_obs_overhead.py`` gates
the enabled path against (< 5% on the 100k-object bulk batch).
"""

from repro.obs.registry import (
    DEFAULT_SECONDS_BUCKETS,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    default_registry,
    set_default_registry,
)
from repro.obs.trace import NULL_TRACER, NullTracer, SpanRecord, Tracer
from repro.obs.freshness import (
    FRESHNESS_CYCLE_BUCKETS,
    NULL_FRESHNESS,
    FreshnessTracker,
    NullFreshnessTracker,
)
from repro.obs.recorder import (
    DEFAULT_RING_SIZE,
    NULL_RECORDER,
    FlightRecorder,
    NullFlightRecorder,
)
from repro.obs.export import (
    JsonlSink,
    prometheus_text,
    registry_to_dict,
    write_chrome_trace,
)

__all__ = [
    "FreshnessTracker",
    "NullFreshnessTracker",
    "NULL_FRESHNESS",
    "FRESHNESS_CYCLE_BUCKETS",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_RECORDER",
    "DEFAULT_RING_SIZE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "NULL_INSTRUMENT",
    "DEFAULT_SECONDS_BUCKETS",
    "default_registry",
    "set_default_registry",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanRecord",
    "JsonlSink",
    "prometheus_text",
    "registry_to_dict",
    "write_chrome_trace",
]
