"""Answer-freshness (staleness) tracking.

The paper's central trade is answer currency versus wakeup cost: SINA
commits positive/negative updates lazily, so the one number that says
whether the system is *correct enough* under load is how stale each
query's answer is — the gap between the motion report that changed it
and the moment the owning client provably received (and later
acknowledged) the resulting update.

The :class:`FreshnessTracker` closes that gap without touching the
update stream:

* the engine stamps every ingested motion report with the evaluation
  cycle it targets plus a monotonic timestamp (one shared tuple per
  cycle — a single dict store per report, cheap enough for the <5%
  telemetry budget);
* the server attributes each shipped update back to its object's last
  stamp at **delivery** time (``link.deliver`` accepted it) and again
  at **commit** time (the client acknowledged it on an uplink), so the
  throttled-client gap between the two — the delivered-view commit fix
  from the fault-injection work — is visible as a distribution, not an
  anecdote;
* staleness lands in registry histograms labelled by ``stage``
  (``delivery`` / ``commit``) and update ``polarity``, in both cycle
  counts and wall-clock seconds, plus bounded per-query summaries with
  exact cycle percentiles.

Updates with no report provenance (query registration fills, query
moves, recovery retractions of departed objects) are counted, not
guessed at.  Telemetry-off mode is a type: :data:`NULL_FRESHNESS`
no-ops every call, which is what the overhead benchmark gates against.
"""

from __future__ import annotations

import time
from math import ceil

from repro.obs.registry import (
    DEFAULT_SECONDS_BUCKETS,
    Histogram,
    MetricsRegistry,
)

#: Cycle-lag histogram bounds: answers are cycle-granular, most updates
#: deliver in the cycle that produced them (lag 0) and recovery lag
#: grows roughly geometrically with outage length.
FRESHNESS_CYCLE_BUCKETS: tuple[float, ...] = (
    0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0, 55.0,
)

STAGES = ("delivery", "commit")
POLARITIES = ("positive", "negative")

#: Per-query pending-commit stamps kept between acknowledgements; a
#: client that never commits must not grow memory without bound.
_MAX_PENDING_PER_QUERY = 4096


class _QuerySummary:
    """Bounded exact-cycle / bucketed-seconds staleness for one query."""

    __slots__ = ("cycle_counts", "seconds")

    def __init__(self) -> None:
        # stage -> {cycle_lag: count}; exact, so percentiles are exact.
        self.cycle_counts: dict[str, dict[int, int]] = {
            stage: {} for stage in STAGES
        }
        self.seconds: dict[str, Histogram] = {
            stage: Histogram(f"freshness_{stage}_seconds")
            for stage in STAGES
        }

    def observe(self, stage: str, cycles: int, seconds: float) -> None:
        counts = self.cycle_counts[stage]
        counts[cycles] = counts.get(cycles, 0) + 1
        self.seconds[stage].observe(seconds)

    def snapshot(self) -> dict[str, object]:
        out: dict[str, object] = {}
        for stage in STAGES:
            counts = self.cycle_counts[stage]
            seconds = self.seconds[stage]
            if not counts:
                continue
            out[stage] = {
                "count": sum(counts.values()),
                "cycles": {
                    "p50": _exact_quantile(counts, 0.50),
                    "p95": _exact_quantile(counts, 0.95),
                    "p99": _exact_quantile(counts, 0.99),
                    "max": max(counts),
                },
                "seconds": {
                    "p50": seconds.quantile(0.50),
                    "p95": seconds.quantile(0.95),
                    "p99": seconds.quantile(0.99),
                    "mean": seconds.mean,
                },
            }
        return out


def _exact_quantile(counts: dict[int, int], q: float) -> int:
    """Nearest-rank quantile over exact ``{value: count}`` tallies."""
    total = sum(counts.values())
    if total == 0:
        return 0
    rank = max(1, ceil(q * total))
    running = 0
    for value in sorted(counts):
        running += counts[value]
        if running >= rank:
            return value
    return max(counts)


class FreshnessTracker:
    """Report-to-update staleness attribution for one engine/server stack.

    The engine owns the write side (:meth:`stamp_report` per buffered
    report, :meth:`end_cycle` per evaluation); the server owns the read
    side (:meth:`observe_delivered` per accepted downlink update,
    :meth:`observe_committed` per acknowledged query).  Staleness of an
    update is measured against the *latest* report of its object — the
    definition of answer currency the paper's client cares about.
    """

    enabled = True

    def __init__(
        self,
        registry: MetricsRegistry,
        clock=time.monotonic,
        max_tracked_queries: int = 256,
    ):
        self._clock = clock
        self.max_tracked_queries = max_tracked_queries
        #: Completed evaluation cycles.
        self.cycle = 0
        # The shared per-cycle stamp: (cycle the next evaluation will
        # be, wall-clock at the cycle boundary).  Refreshed once per
        # cycle so stamping a report is a single dict store.
        self._stamp: tuple[int, float] = (1, clock())
        self._stamps: dict[int, tuple[int, float]] = {}
        # qid -> [(stamp_cycle, stamp_ts, polarity), ...] delivered but
        # not yet acknowledged; drained by observe_committed.
        self._pending_commit: dict[int, list[tuple[int, float, str]]] = {}
        self._per_query: dict[int, _QuerySummary] = {}
        self._hists: dict[tuple[str, str], tuple[Histogram, Histogram]] = {}
        for stage in STAGES:
            for polarity in POLARITIES:
                labels = {"stage": stage, "polarity": polarity}
                self._hists[(stage, polarity)] = (
                    registry.histogram(
                        "freshness_staleness_cycles",
                        buckets=FRESHNESS_CYCLE_BUCKETS,
                        labels=labels,
                    ),
                    registry.histogram(
                        "freshness_staleness_seconds",
                        buckets=DEFAULT_SECONDS_BUCKETS,
                        labels=labels,
                    ),
                )
        self._m_unattributed = registry.counter(
            "freshness_unattributed_updates_total"
        )
        self._m_undelivered = registry.counter(
            "freshness_undelivered_updates_total"
        )
        self._m_untracked = registry.counter(
            "freshness_untracked_queries_total"
        )
        self._m_tracked_objects = registry.gauge("freshness_tracked_objects")
        self._m_pending_dropped = registry.counter(
            "freshness_pending_commit_dropped_total"
        )

    # -- write side (engine) -------------------------------------------

    def stamp_report(self, oid: int) -> None:
        """Stamp ``oid``'s latest report with the current cycle stamp.

        Hot path: one dict store.  Last report wins, mirroring the
        engine's own last-report-wins buffering.
        """
        self._stamps[oid] = self._stamp

    def forget(self, oid: int) -> None:
        """Drop ``oid``'s stamp (the object left the system)."""
        self._stamps.pop(oid, None)

    def end_cycle(self) -> None:
        """One evaluation completed: advance the cycle stamp."""
        self.cycle += 1
        self._stamp = (self.cycle + 1, self._clock())
        self._m_tracked_objects.set(len(self._stamps))

    # -- read side (server) --------------------------------------------

    def observe_delivered(self, qid: int, oid: int, sign: int) -> None:
        """One update the link accepted; attribute delivery staleness
        and queue the stamp for commit-stage attribution."""
        stamp = self._stamps.get(oid)
        if stamp is None:
            self._m_unattributed.inc()
            return
        stamp_cycle, stamp_ts = stamp
        lag_cycles = self.cycle - stamp_cycle
        if lag_cycles < 0:
            lag_cycles = 0
        lag_seconds = self._clock() - stamp_ts
        polarity = "positive" if sign == 1 else "negative"
        cycles_hist, seconds_hist = self._hists[("delivery", polarity)]
        cycles_hist.observe(lag_cycles)
        seconds_hist.observe(lag_seconds)
        self._observe_query(qid, "delivery", lag_cycles, lag_seconds)
        pending = self._pending_commit.setdefault(qid, [])
        if len(pending) >= _MAX_PENDING_PER_QUERY:
            del pending[0]
            self._m_pending_dropped.inc()
        pending.append((stamp_cycle, stamp_ts, polarity))

    def observe_undelivered(self, qid: int, oid: int, sign: int) -> None:
        """One update the link rejected (throttled, disconnected, or
        faulted away).  The stamp stays put: the recovery delivery that
        eventually lands it will be attributed with the full lag."""
        self._m_undelivered.inc()

    def observe_committed(self, qid: int) -> None:
        """The client acknowledged ``qid``; attribute commit staleness
        for every update delivered since the previous acknowledgement."""
        pending = self._pending_commit.pop(qid, None)
        if not pending:
            return
        now_cycle = self.cycle
        now_ts = self._clock()
        for stamp_cycle, stamp_ts, polarity in pending:
            lag_cycles = now_cycle - stamp_cycle
            if lag_cycles < 0:
                lag_cycles = 0
            lag_seconds = now_ts - stamp_ts
            cycles_hist, seconds_hist = self._hists[("commit", polarity)]
            cycles_hist.observe(lag_cycles)
            seconds_hist.observe(lag_seconds)
            self._observe_query(qid, "commit", lag_cycles, lag_seconds)

    def forget_query(self, qid: int) -> None:
        """Drop ``qid``'s pending and summary state (unregistered)."""
        self._pending_commit.pop(qid, None)
        self._per_query.pop(qid, None)

    def _observe_query(
        self, qid: int, stage: str, cycles: int, seconds: float
    ) -> None:
        summary = self._per_query.get(qid)
        if summary is None:
            if len(self._per_query) >= self.max_tracked_queries:
                self._m_untracked.inc()
                return
            summary = self._per_query[qid] = _QuerySummary()
        summary.observe(stage, cycles, seconds)

    # -- snapshots ------------------------------------------------------

    def query_summary(self, qid: int) -> dict[str, object]:
        """Per-stage staleness percentiles for one query ({} if untracked)."""
        summary = self._per_query.get(qid)
        return summary.snapshot() if summary is not None else {}

    def stage_summary(self) -> dict[str, object]:
        """Aggregate percentiles per (stage, polarity) from the registry
        histograms — the numbers a ``/metrics`` scrape would derive."""
        out: dict[str, object] = {}
        for (stage, polarity), (cycles, seconds) in self._hists.items():
            if cycles.count == 0:
                continue
            out.setdefault(stage, {})[polarity] = {  # type: ignore[union-attr]
                "count": cycles.count,
                "cycles": {
                    "p50": cycles.quantile(0.50),
                    "p95": cycles.quantile(0.95),
                    "p99": cycles.quantile(0.99),
                    "mean": cycles.mean,
                },
                "seconds": {
                    "p50": seconds.quantile(0.50),
                    "p95": seconds.quantile(0.95),
                    "p99": seconds.quantile(0.99),
                    "mean": seconds.mean,
                },
            }
        return out

    def snapshot(self) -> dict[str, object]:
        """The whole staleness picture, JSON-ready."""
        return {
            "cycle": self.cycle,
            "tracked_objects": len(self._stamps),
            "unattributed_updates": int(self._m_unattributed.value),
            "undelivered_updates": int(self._m_undelivered.value),
            "stages": self.stage_summary(),
            "queries": {
                qid: summary.snapshot()
                for qid, summary in sorted(self._per_query.items())
            },
        }


class NullFreshnessTracker:
    """Freshness tracking off: every call is a shared no-op."""

    enabled = False
    cycle = 0

    __slots__ = ()

    def stamp_report(self, oid: int) -> None:
        pass

    def forget(self, oid: int) -> None:
        pass

    def end_cycle(self) -> None:
        pass

    def observe_delivered(self, qid: int, oid: int, sign: int) -> None:
        pass

    def observe_undelivered(self, qid: int, oid: int, sign: int) -> None:
        pass

    def observe_committed(self, qid: int) -> None:
        pass

    def forget_query(self, qid: int) -> None:
        pass

    def query_summary(self, qid: int) -> dict[str, object]:
        return {}

    def stage_summary(self) -> dict[str, object]:
        return {}

    def snapshot(self) -> dict[str, object]:
        return {}


NULL_FRESHNESS = NullFreshnessTracker()
