"""Per-cycle span tracing.

A :class:`Tracer` records wall-clock spans — one per evaluation phase,
one per server cycle, one per downlink ship — as lightweight tuples
that export directly to Chrome's trace-event JSON (open the file at
``chrome://tracing`` or https://ui.perfetto.dev).  Spans nest through
plain ``with`` blocks: the tracer tracks a depth counter, and the
exporter emits complete ("ph": "X") events whose nesting the viewer
reconstructs from timestamps.

A span *always* records, including when the body raises — an exception
mid-phase must not lose the lap (the failed phase is exactly the one an
operator wants to see).  Errored spans are flagged in their args.

Spans can feed metrics on the way out: ``span(name, counter=c)`` adds
the measured duration to ``c`` (the engine's per-phase second counters
ride on this), ``histogram=h`` observes it (cycle latency).
"""

from __future__ import annotations

import time


class SpanRecord:
    """One finished (or in-flight) span.

    ``span_id`` / ``parent_id`` form the causal chain (0 = no parent);
    ``tid`` is the logical track the Chrome exporter renders the span
    on — 0 for the coordinator, ``shard + 1`` for spans echoed back
    from pool workers via :meth:`Tracer.record_remote`.
    """

    __slots__ = ("name", "start", "duration", "depth", "error", "span_id", "parent_id", "tid")

    def __init__(
        self,
        name: str,
        start: float,
        duration: float,
        depth: int,
        error: bool,
        span_id: int = 0,
        parent_id: int = 0,
        tid: int = 0,
    ):
        self.name = name
        self.start = start
        self.duration = duration
        self.depth = depth
        self.error = error
        self.span_id = span_id
        self.parent_id = parent_id
        self.tid = tid


class _Span:
    """Context manager for one span; records on exit, even on raise."""

    __slots__ = (
        "_tracer", "name", "counter", "histogram", "start", "duration",
        "error", "span_id", "parent_id",
    )

    def __init__(self, tracer: "Tracer", name: str, counter, histogram):
        self._tracer = tracer
        self.name = name
        self.counter = counter
        self.histogram = histogram
        self.start = 0.0
        self.duration = 0.0
        self.error = False
        self.span_id = 0
        self.parent_id = 0

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        tracer._depth += 1
        stack = tracer._stack
        self.parent_id = stack[-1] if stack else 0
        self.span_id = tracer._next_id
        tracer._next_id += 1
        stack.append(self.span_id)
        self.start = tracer._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        tracer = self._tracer
        self.duration = tracer._clock() - self.start
        self.error = exc_type is not None
        tracer._depth -= 1
        tracer._stack.pop()
        tracer._record(self)
        if self.counter is not None:
            self.counter.inc(self.duration)
        if self.histogram is not None:
            self.histogram.observe(self.duration)


class _NullSpan:
    """Shared no-op span — stateless, so reentrancy is safe."""

    __slots__ = ()

    name = ""
    start = 0.0
    duration = 0.0
    error = False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _MetricOnlySpan:
    """Times the body and feeds attached metrics, records no trace event.

    Handed out by :class:`NullTracer` when a span carries a counter or
    histogram: disabling *tracing* must not silently disable the
    *metrics* that ride on spans (the engine's per-phase seconds).
    """

    __slots__ = ("counter", "histogram", "start", "duration", "error")

    name = ""

    def __init__(self, counter, histogram):
        self.counter = counter
        self.histogram = histogram
        self.start = 0.0
        self.duration = 0.0
        self.error = False

    def __enter__(self) -> "_MetricOnlySpan":
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self.start
        self.error = exc_type is not None
        if self.counter is not None:
            self.counter.inc(self.duration)
        if self.histogram is not None:
            self.histogram.observe(self.duration)


class Tracer:
    """Bounded in-memory span recorder.

    ``max_events`` caps memory for long simulations; once full, new
    spans are counted in ``dropped`` instead of recorded (the head of
    the trace — startup and early cycles — is usually what you open
    the viewer for).
    """

    enabled = True

    def __init__(self, max_events: int = 65_536, clock=time.perf_counter):
        if max_events < 1:
            raise ValueError(f"max_events must be positive, got {max_events}")
        self.events: list[SpanRecord] = []
        self.max_events = max_events
        self.dropped = 0
        self._clock = clock
        self._depth = 0
        self._next_id = 1
        self._stack: list[int] = []
        self._origin = clock()

    def span(self, name: str, counter=None, histogram=None) -> _Span:
        """A context manager timing one span.

        ``counter.inc(duration)`` / ``histogram.observe(duration)`` run
        on exit when given — including when the body raises, so metric
        and trace stay consistent with each other.
        """
        return _Span(self, name, counter, histogram)

    @property
    def current_span_id(self) -> int:
        """The innermost open span's id (0 when no span is open).

        This is the trace context a coordinator threads into work it
        ships elsewhere — e.g. onto the parallel pipeline's shard
        payloads — so remote timings can be parented correctly.
        """
        stack = self._stack
        return stack[-1] if stack else 0

    def now(self) -> float:
        """The current origin-relative time, for anchoring remote spans."""
        return self._clock() - self._origin

    def record_remote(
        self,
        spans,
        anchor: float,
        tid: int = 0,
        parent_id: int = 0,
    ) -> None:
        """Record spans measured elsewhere (a pool worker's phase laps).

        ``spans`` is an iterable of ``(name, rel_start, duration)``
        triples whose times are relative to the remote clock's own
        start; ``anchor`` is the origin-relative instant (from
        :meth:`now`) the work was dispatched, so every remote span
        lands inside the dispatch window even though the two clocks
        are not otherwise comparable.  ``parent_id`` nests the spans
        under a local span; ``tid`` gives them their own track in the
        Chrome export.
        """
        for name, rel_start, duration in spans:
            if len(self.events) >= self.max_events:
                self.dropped += 1
                continue
            span_id = self._next_id
            self._next_id += 1
            self.events.append(
                SpanRecord(
                    name,
                    anchor + rel_start,
                    duration,
                    self._depth + 1,
                    False,
                    span_id,
                    parent_id,
                    tid,
                )
            )

    def _record(self, span: _Span) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(
            SpanRecord(
                span.name,
                span.start - self._origin,
                span.duration,
                self._depth,
                span.error,
                span.span_id,
                span.parent_id,
                0,
            )
        )

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    def to_chrome_trace(self) -> dict[str, object]:
        """Chrome trace-event JSON (complete events, microsecond times)."""
        trace_events = []
        for record in self.events:
            args: dict[str, object] = {}
            if record.span_id:
                args["id"] = record.span_id
                args["parent"] = record.parent_id
            if record.error:
                args["error"] = True
            event: dict[str, object] = {
                "name": record.name,
                "ph": "X",
                "ts": record.start * 1e6,
                "dur": record.duration * 1e6,
                "pid": 0,
                "tid": record.tid,
                "cat": "repro",
            }
            if args:
                event["args"] = args
            trace_events.append(event)
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


class NullTracer(Tracer):
    """Tracing off: spans are shared no-ops, nothing is recorded."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(max_events=1)

    def span(self, name: str, counter=None, histogram=None):  # type: ignore[override]
        if counter is None and histogram is None:
            return _NULL_SPAN
        return _MetricOnlySpan(counter, histogram)

    def now(self) -> float:  # type: ignore[override]
        return 0.0

    def record_remote(self, spans, anchor, tid=0, parent_id=0) -> None:  # type: ignore[override]
        pass


NULL_TRACER = NullTracer()
