"""Committed answers and out-of-sync client recovery (paper Section 3.3).

A committed answer is one "it is guaranteed that the client has
received".  The server keeps, per query, the last committed answer
alongside the live answer; when an out-of-sync client wakes up, the
server "compares the latest answer for the query with the committed
answer, and sends the difference of the answer in the form of positive
and negative updates" — typically far cheaper than retransmitting the
whole answer.

Commit triggers follow the paper: any uplink message from a *moving*
query implicitly commits its latest delivered answer (the message proves
the client is alive and connected), while *stationary* queries commit
only via an explicit commit message, sent "at the convenient times of
the clients".
"""

from __future__ import annotations

from repro.core.updates import Update, diff_answers


class CommittedAnswerStore:
    """The repository of committed query answers."""

    def __init__(self) -> None:
        self._committed: dict[int, frozenset[int]] = {}

    def committed_answer(self, qid: int) -> frozenset[int]:
        """The last committed answer (empty before any commit)."""
        return self._committed.get(qid, frozenset())

    def commit(self, qid: int, answer: frozenset[int]) -> None:
        """Mark ``answer`` as guaranteed-received for ``qid``."""
        self._committed[qid] = answer

    def forget(self, qid: int) -> None:
        """Drop state for an unregistered query."""
        self._committed.pop(qid, None)

    def recovery_updates(
        self, qid: int, current_answer: frozenset[int], into=None
    ) -> "list[Update] | object":
        """The +/- delta bringing a reconnecting client up to date.

        The client's stored answer equals the committed answer (every
        delivered-and-acknowledged update is folded into a commit), so
        the difference against the server's current answer is exactly
        what the client is missing.  ``into`` (an
        :class:`~repro.core.updates.UpdateBatch`) is forwarded to
        :func:`diff_answers` so the server's recovery path stays on
        the columnar stream representation.
        """
        return diff_answers(
            qid,
            set(self.committed_answer(qid)),
            set(current_answer),
            into=into,
        )

    def tracked_queries(self) -> set[int]:
        return set(self._committed)
