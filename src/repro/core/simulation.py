"""End-to-end simulation harness.

Recreates the paper's experimental setup: a road network, network-
constrained moving objects, a population of square range queries (a
configurable share of which move with carrier objects), the location-
aware server buffering updates, and a bulk evaluation "every 5 seconds".
Each cycle records incremental answer bytes versus complete answer bytes
— the two curves of Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.client import Client
from repro.core.server import CycleResult, LocationAwareServer
from repro.generator import (
    MovingObjectSimulator,
    WorkloadConfig,
    WorkloadGenerator,
    manhattan_city,
)
from repro.generator.roadnet import RoadNetwork


@dataclass(slots=True)
class SimulationConfig:
    """Everything needed to reproduce one experimental run."""

    object_count: int = 1000
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    grid_size: int = 64
    eval_period: float = 5.0  # the paper's T
    object_report_fraction: float = 1.0  # Figure 5(a)'s x-axis
    blocks: int = 16
    seed: int = 0
    route_mode: str = "walk"
    prediction_horizon: float = 60.0


class Simulation:
    """A driving loop: generator -> server -> clients, with accounting."""

    def __init__(
        self, config: SimulationConfig, network: RoadNetwork | None = None
    ):
        self.config = config
        self.network = network if network is not None else manhattan_city(config.blocks)
        self.sim = MovingObjectSimulator(
            self.network,
            config.object_count,
            seed=config.seed,
            route_mode=config.route_mode,
        )
        self.server = LocationAwareServer(
            grid_size=config.grid_size,
            prediction_horizon=config.prediction_horizon,
        )
        self.client = Client(client_id=0, server=self.server)
        self.workload = WorkloadGenerator(
            config.workload, self.sim, first_qid=config.object_count
        )
        self.results: list[CycleResult] = []
        self._bootstrap()

    def _bootstrap(self) -> None:
        """Initial object reports, query registrations, first evaluation."""
        for report in self.sim.initial_reports():
            self.server.receive_object_report(
                report.oid, report.location, report.t, report.velocity
            )
        for spec in self.workload.specs.values():
            self._register(spec)
        initial = self.server.evaluate_cycle(self.sim.now)
        self.client.pump()
        self.results.append(initial)

    def _register(self, spec) -> None:
        if spec.kind == "range":
            self.server.register_range_query(
                self.client.client_id, spec.qid, spec.region(), self.sim.now
            )
        elif spec.kind == "knn":
            self.server.register_knn_query(
                self.client.client_id, spec.qid, spec.center, spec.k, self.sim.now
            )
        else:
            self.server.register_predictive_query(
                self.client.client_id,
                spec.qid,
                spec.region(),
                spec.horizon,
                self.sim.now,
            )
        self.client.track_query(spec.qid)

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def step(self) -> CycleResult:
        """One evaluation period: move, report, evaluate, deliver."""
        reports = self.sim.tick(
            self.config.eval_period, self.config.object_report_fraction
        )
        for oid in self.sim.departed:
            self.server.remove_object(oid)
        for report in reports:
            self.server.receive_object_report(
                report.oid, report.location, report.t, report.velocity
            )
        moved_oids = [report.oid for report in reports]
        for spec in self.workload.updates_for_moved_objects(moved_oids):
            if spec.kind == "range":
                self.server.receive_range_query_move(
                    spec.qid, spec.region(), self.sim.now
                )
            elif spec.kind == "knn":
                self.server.receive_knn_query_move(
                    spec.qid, spec.center, self.sim.now
                )
            else:
                self.server.receive_predictive_query_move(
                    spec.qid, spec.region(), self.sim.now
                )
            self.client.note_uplink_commit(spec.qid)
        result = self.server.evaluate_cycle(self.sim.now)
        self.client.pump()
        self.results.append(result)
        return result

    def run(self, cycles: int) -> list[CycleResult]:
        """Run ``cycles`` evaluation periods; returns their results."""
        return [self.step() for __ in range(cycles)]

    # ------------------------------------------------------------------
    # Reporting helpers (used by the Figure 5 benchmarks)
    # ------------------------------------------------------------------

    def mean_incremental_kb(self, skip_first: bool = True) -> float:
        """Mean per-cycle incremental answer size in KB.

        The bootstrap cycle ships every first-time answer and is not an
        *incremental* cycle, so it is skipped by default.
        """
        window = self.results[1:] if skip_first else self.results
        if not window:
            return 0.0
        return sum(r.incremental_bytes for r in window) / len(window) / 1024.0

    def mean_complete_kb(self, skip_first: bool = True) -> float:
        """Mean per-cycle complete answer size in KB."""
        window = self.results[1:] if skip_first else self.results
        if not window:
            return 0.0
        return sum(r.complete_bytes for r in window) / len(window) / 1024.0
