"""The shared, incremental continuous-query engine.

This is the paper's contribution (Section 3): one uniform grid holds
both objects and queries ("queries are indexed in the same way as data");
location reports and query movements are *buffered* and evaluated in
bulk; each evaluation emits only positive/negative updates relative to
the previously reported answers.

Incrementality per query kind:

* **Range** — when a query's region moves from ``A_old`` to ``A_new``,
  answer members outside ``A_new`` produce negative updates, and only
  the difference area ``A_new - A_old`` is searched for positives ("the
  area A_new ∩ A_old does not need to be reevaluated where the query
  result of this area is already reported").  Object moves touch only
  the queries sharing a grid cell with the object's old or new position.
* **k-NN** — maintained as the smallest circle containing the k nearest
  objects.  Object movement marks a k-NN query dirty only when the move
  touches the circle's grid footprint (or the object was an answer
  member); dirty queries are re-solved with an expanding ring search
  around their center and the *answer difference* is emitted.
* **Predictive range** — objects carrying velocity vectors are indexed
  by the grid footprint of their predicted trajectory; a predictive
  query's answer is the set of objects whose extrapolated motion enters
  its region within the query's horizon.  Because the horizon window
  slides with evaluation time, predictive answers are re-filtered every
  cycle from the query's (small) candidate cell set.

The engine is single-threaded and in-memory by design: persistence is
layered on by :class:`repro.core.server.LocationAwareServer` through the
storage package, and transport by :mod:`repro.net`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.knn import knn_search
from repro.core.state import (
    KnnQueryState,
    ObjectState,
    PredictiveQueryState,
    QueryKind,
    QueryState,
    RangeQueryState,
)
from repro.core.updates import Update
from repro.geometry import Point, Rect, Velocity
from repro.grid import Grid, GridIndex

DEFAULT_WORLD = Rect(0.0, 0.0, 1.0, 1.0)


@dataclass(slots=True)
class EngineStats:
    """Cumulative work counters — the engine's observability surface.

    These are *work* measures, not wall-clock: how many buffered inputs
    each evaluation consumed and how much repair they triggered.  The
    benchmarks use them to explain where time goes; operators would use
    them to spot hot queries and mis-sized grids.
    """

    evaluations: int = 0
    object_reports: int = 0
    object_removals: int = 0
    query_registrations: int = 0
    query_moves: int = 0
    query_unregistrations: int = 0
    knn_repairs: int = 0
    updates_emitted: int = 0


class IncrementalEngine:
    """Shared execution + incremental evaluation over one grid.

    Parameters
    ----------
    world:
        The rectangle all locations live in (paper: the unit square).
    grid_size:
        N for the N x N uniform grid.
    prediction_horizon:
        How far (seconds) object trajectories are extrapolated when
        indexing predictive objects.  Every predictive query's horizon
        must fit inside it.
    """

    def __init__(
        self,
        world: Rect = DEFAULT_WORLD,
        grid_size: int = 64,
        prediction_horizon: float = 60.0,
    ):
        if prediction_horizon < 0:
            raise ValueError(
                f"prediction_horizon must be >= 0, got {prediction_horizon}"
            )
        self.grid = Grid(world, grid_size)
        self.index = GridIndex(self.grid)
        self.prediction_horizon = prediction_horizon
        self.now = 0.0
        self.objects: dict[int, ObjectState] = {}
        self.queries: dict[int, QueryState] = {}
        # Buffered inputs, applied in bulk by evaluate().
        self._pending_reports: dict[int, tuple[Point, Velocity, float]] = {}
        self._pending_removals: set[int] = set()
        self._pending_registrations: list[QueryState] = []
        self._pending_moves: dict[int, tuple[object, float]] = {}
        self._pending_unregistrations: set[int] = set()
        # k-NN queries holding fewer than k objects must watch for any
        # population growth, not just movement near their circle.
        self._underfull_knn: set[int] = set()
        self.stats = EngineStats()

    # ------------------------------------------------------------------
    # Ingestion (buffered)
    # ------------------------------------------------------------------

    def report_object(
        self,
        oid: int,
        location: Point,
        t: float,
        velocity: Velocity = Velocity.ZERO,
    ) -> None:
        """Buffer a location report.  The last report per object wins
        within a batch (the server evaluates every T seconds; a device
        reporting twice within one period supersedes itself).

        Locations are clamped into the service area (the grid's world):
        the engine guarantees completeness only for in-world geometry,
        so out-of-world drift is pulled back to the boundary.
        """
        self._pending_removals.discard(oid)
        location = self.grid.world.clamp_point(location)
        self._pending_reports[oid] = (location, velocity, t)

    def remove_object(self, oid: int) -> None:
        """Buffer an object's departure from the system."""
        self._pending_reports.pop(oid, None)
        self._pending_removals.add(oid)

    def register_range_query(self, qid: int, region: Rect, t: float = 0.0) -> None:
        """Register a continuous range query (stationary until moved).

        Regions are clipped to the service area — queries are answered
        over the world the server indexes, so the portion of a region
        hanging off the map can never hold an answer object.
        """
        self._check_fresh_qid(qid)
        region = self.grid.world.clip_or_pin(region)
        self._pending_registrations.append(RangeQueryState(qid, region, t))

    def register_knn_query(
        self, qid: int, center: Point, k: int, t: float = 0.0
    ) -> None:
        """Register a continuous k-NN query anchored at ``center``."""
        self._check_fresh_qid(qid)
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self._pending_registrations.append(KnnQueryState(qid, center, k, t))

    def register_predictive_query(
        self, qid: int, region: Rect, horizon: float, t: float = 0.0
    ) -> None:
        """Register a predictive range query looking ``horizon`` s ahead."""
        self._check_fresh_qid(qid)
        if not 0 < horizon <= self.prediction_horizon:
            raise ValueError(
                f"query horizon {horizon} must be in "
                f"(0, {self.prediction_horizon}]"
            )
        region = self.grid.world.clip_or_pin(region)
        self._pending_registrations.append(
            PredictiveQueryState(qid, region, horizon, t)
        )

    def move_range_query(self, qid: int, region: Rect, t: float) -> None:
        """Buffer a moving range query's new region (service-area clipped)."""
        self._pending_moves[qid] = (self.grid.world.clip_or_pin(region), t)

    def move_knn_query(self, qid: int, center: Point, t: float) -> None:
        """Buffer a moving k-NN query's new focal point."""
        self._pending_moves[qid] = (center, t)

    def move_predictive_query(self, qid: int, region: Rect, t: float) -> None:
        """Buffer a moving predictive query's new region (clipped)."""
        self._pending_moves[qid] = (self.grid.world.clip_or_pin(region), t)

    def unregister_query(self, qid: int) -> None:
        """Buffer a query's removal; no further updates will be emitted.

        Unregistering a query that was registered earlier in the *same*
        batch cancels the pending registration (arrival order wins).
        """
        self._pending_moves.pop(qid, None)
        if any(q.qid == qid for q in self._pending_registrations):
            self._pending_registrations = [
                q for q in self._pending_registrations if q.qid != qid
            ]
            return
        self._pending_unregistrations.add(qid)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def object_count(self) -> int:
        return len(self.objects)

    @property
    def query_count(self) -> int:
        return len(self.queries)

    def answer_of(self, qid: int) -> frozenset[int]:
        """The current (last evaluated) answer set of ``qid``."""
        return frozenset(self.queries[qid].answer)

    def complete_answers(self) -> dict[int, frozenset[int]]:
        """Every query's full answer — what a snapshot server retransmits."""
        return {qid: frozenset(q.answer) for qid, q in self.queries.items()}

    # ------------------------------------------------------------------
    # Bulk evaluation
    # ------------------------------------------------------------------

    def evaluate(self, now: float | None = None) -> list[Update]:
        """Apply all buffered input and return the incremental updates.

        Phases: unregistrations, object removals, new-query first-time
        answers, query moves, object moves, k-NN repair, predictive
        window refresh.  Applying the returned updates in order to the
        previously reported answers reproduces the current answers
        exactly (tested property).
        """
        if now is None:
            now = self.now
        if now < self.now:
            raise ValueError(f"time went backwards: {now} < {self.now}")
        self.now = now

        self.stats.evaluations += 1
        self.stats.object_reports += len(self._pending_reports)
        self.stats.object_removals += len(self._pending_removals)
        self.stats.query_registrations += len(self._pending_registrations)
        self.stats.query_moves += len(self._pending_moves)
        self.stats.query_unregistrations += len(self._pending_unregistrations)

        updates: list[Update] = []
        knn_dirty: set[int] = set(self._underfull_knn)

        self._apply_unregistrations(knn_dirty)
        self._apply_removals(updates, knn_dirty)
        self._apply_registrations(updates, knn_dirty)
        self._apply_query_moves(updates, knn_dirty)
        self._apply_object_reports(updates, knn_dirty)
        self._repair_knn(knn_dirty, updates)
        self._refresh_predictive(updates)
        self.stats.updates_emitted += len(updates)
        return updates

    # ------------------------------------------------------------------
    # Phase 1-2: departures
    # ------------------------------------------------------------------

    def _apply_unregistrations(self, knn_dirty: set[int]) -> None:
        for qid in sorted(self._pending_unregistrations):
            query = self.queries.pop(qid, None)
            if query is None:
                continue
            self.index.remove_query(qid)
            self._underfull_knn.discard(qid)
            knn_dirty.discard(qid)
            for oid in query.answer:
                self.objects[oid].answered.discard(qid)
        self._pending_unregistrations.clear()

    def _apply_removals(self, updates: list[Update], knn_dirty: set[int]) -> None:
        for oid in sorted(self._pending_removals):
            state = self.objects.pop(oid, None)
            if state is None:
                continue
            self.index.remove_object(oid)
            for qid in sorted(state.answered):
                query = self.queries[qid]
                query.answer.discard(oid)
                updates.append(Update.negative(qid, oid))
                if query.kind is QueryKind.KNN:
                    knn_dirty.add(qid)
        self._pending_removals.clear()

    # ------------------------------------------------------------------
    # Phase 3: first-time answers for new queries
    # ------------------------------------------------------------------

    def _apply_registrations(
        self, updates: list[Update], knn_dirty: set[int]
    ) -> None:
        for query in self._pending_registrations:
            self.queries[query.qid] = query
            if query.kind is QueryKind.RANGE:
                self.index.place_query_region(query.qid, query.region)
                self._fill_range_answer(query, updates)
            elif query.kind is QueryKind.KNN:
                # Placed at its center first; _repair_knn computes the
                # first-time answer and widens the footprint to the circle.
                self.index.place_query(
                    query.qid,
                    frozenset((self.grid.cell_of(query.center),)),
                )
                knn_dirty.add(query.qid)
            else:
                # Predictive: footprint now, answer in the refresh phase.
                self.index.place_query_region(query.qid, query.region)
        self._pending_registrations.clear()

    def _fill_range_answer(
        self, query: RangeQueryState, updates: list[Update]
    ) -> None:
        for oid in sorted(self.index.objects_overlapping(query.region)):
            state = self.objects[oid]
            if query.region.contains_point(state.location):
                query.answer.add(oid)
                state.answered.add(query.qid)
                updates.append(Update.positive(query.qid, oid))

    # ------------------------------------------------------------------
    # Phase 4: query movement
    # ------------------------------------------------------------------

    def _apply_query_moves(
        self, updates: list[Update], knn_dirty: set[int]
    ) -> None:
        for qid, (payload, t) in self._pending_moves.items():
            query = self.queries.get(qid)
            if query is None:
                raise KeyError(f"cannot move unknown query {qid}")
            query.t = t
            if query.kind is QueryKind.RANGE:
                self._move_range(query, payload, updates)  # type: ignore[arg-type]
            elif query.kind is QueryKind.KNN:
                query.center = payload  # type: ignore[assignment]
                knn_dirty.add(qid)
            else:
                # Predictive regions re-filter in the refresh phase; only
                # the footprint needs to move now.
                query.region = payload  # type: ignore[assignment]
                self.index.place_query_region(qid, payload)  # type: ignore[arg-type]
        self._pending_moves.clear()

    def _move_range(
        self, query: RangeQueryState, new_region: Rect, updates: list[Update]
    ) -> None:
        old_region = query.region
        query.region = new_region

        # Negative updates: answer members in A_old - A_new.
        for oid in sorted(query.answer):
            if not new_region.contains_point(self.objects[oid].location):
                query.answer.discard(oid)
                self.objects[oid].answered.discard(query.qid)
                updates.append(Update.negative(query.qid, oid))

        # Positive updates: search only A_new - A_old.
        for piece in new_region.difference(old_region):
            for oid in sorted(self.index.objects_overlapping(piece)):
                if oid in query.answer:
                    continue
                state = self.objects[oid]
                if piece.contains_point(state.location):
                    query.answer.add(oid)
                    state.answered.add(query.qid)
                    updates.append(Update.positive(query.qid, oid))

        self.index.place_query_region(query.qid, new_region)

    # ------------------------------------------------------------------
    # Phase 5: object movement
    # ------------------------------------------------------------------

    def _apply_object_reports(
        self, updates: list[Update], knn_dirty: set[int]
    ) -> None:
        for oid, (location, velocity, t) in self._pending_reports.items():
            state = self.objects.get(oid)
            if state is None:
                state = ObjectState(oid, location, velocity, t)
                self.objects[oid] = state
                old_cells: frozenset[int] = frozenset()
            else:
                old_cells = self.index.object_cells(oid)
                state.location = location
                state.velocity = velocity
                state.t = t
            self.index.place_object(oid, self._object_footprint(state))

            candidates = self.index.queries_colocated_with_object(oid)
            for cell in old_cells:
                candidates |= self.index.queries_in_cell(cell)
            candidates |= state.answered

            for qid in sorted(candidates):
                query = self.queries[qid]
                if query.kind is QueryKind.RANGE:
                    self._update_range_membership(query, state, updates)
                elif query.kind is QueryKind.KNN:
                    knn_dirty.add(qid)
                # Predictive membership is settled by the refresh phase.
        self._pending_reports.clear()

    def _update_range_membership(
        self, query: RangeQueryState, state: ObjectState, updates: list[Update]
    ) -> None:
        inside = query.region.contains_point(state.location)
        was_member = state.oid in query.answer
        if inside and not was_member:
            query.answer.add(state.oid)
            state.answered.add(query.qid)
            updates.append(Update.positive(query.qid, state.oid))
        elif not inside and was_member:
            query.answer.discard(state.oid)
            state.answered.discard(query.qid)
            updates.append(Update.negative(query.qid, state.oid))

    def _object_footprint(self, state: ObjectState) -> frozenset[int]:
        if state.is_predictive and self.prediction_horizon > 0:
            rect = state.motion().bounding_rect_until(
                state.t + self.prediction_horizon
            )
            cells = self.grid.cells_overlapping_set(rect)
            if cells:
                return cells
            # The whole predicted trajectory lies outside the world
            # (the object drifted off the map): clamp to the nearest
            # cell so the object keeps a deterministic home.
        return frozenset((self.grid.cell_of(state.location),))

    # ------------------------------------------------------------------
    # Phase 6: k-NN repair
    # ------------------------------------------------------------------

    def _repair_knn(self, knn_dirty: set[int], updates: list[Update]) -> None:
        for qid in sorted(knn_dirty):
            query = self.queries.get(qid)
            if query is None or query.kind is not QueryKind.KNN:
                continue
            self.stats.knn_repairs += 1
            self._solve_knn(query, updates)

    def _solve_knn(self, query: KnnQueryState, updates: list[Update]) -> None:
        """Re-solve a dirty k-NN query and emit the answer difference.

        The ring search starts from the query's center and is bounded by
        the k-th distance, so the work stays local to the circle — the
        shared-grid analogue of the paper's "evict the furthest / admit
        the entrant" circle maintenance, with the search doubling as the
        replacement lookup when members depart.
        """
        ranked = knn_search(self.index, self.objects, query.center, query.k)
        new_answer = {oid for __, oid in ranked}

        for oid in sorted(query.answer - new_answer):
            query.answer.discard(oid)
            self.objects[oid].answered.discard(query.qid)
            updates.append(Update.negative(query.qid, oid))
        for oid in sorted(new_answer - query.answer):
            query.answer.add(oid)
            self.objects[oid].answered.add(query.qid)
            updates.append(Update.positive(query.qid, oid))

        query.radius = ranked[-1][0] if ranked else 0.0
        footprint = self.grid.cells_overlapping_set(
            query.circle().bounding_rect()
        )
        if not footprint:  # center outside the world: clamp to home cell
            footprint = frozenset((self.grid.cell_of(query.center),))
        self.index.place_query(query.qid, footprint)

        if len(query.answer) < query.k:
            self._underfull_knn.add(query.qid)
        else:
            self._underfull_knn.discard(query.qid)

    # ------------------------------------------------------------------
    # Phase 7: predictive window refresh
    # ------------------------------------------------------------------

    def _refresh_predictive(self, updates: list[Update]) -> None:
        for qid, query in self.queries.items():
            if query.kind is not QueryKind.PREDICTIVE_RANGE:
                continue
            candidates = set(query.answer)
            for cell in self.index.query_cells(qid):
                candidates |= self.index.objects_in_cell(cell)
            for oid in sorted(candidates):
                state = self.objects[oid]
                inside = self._predicted_in_region(query, state)
                was_member = oid in query.answer
                if inside and not was_member:
                    query.answer.add(oid)
                    state.answered.add(qid)
                    updates.append(Update.positive(qid, oid))
                elif not inside and was_member:
                    query.answer.discard(oid)
                    state.answered.discard(qid)
                    updates.append(Update.negative(qid, oid))

    def _predicted_in_region(
        self, query: PredictiveQueryState, state: ObjectState
    ) -> bool:
        """Will ``state`` be inside the query region within its horizon?

        The window is ``[now, now + horizon]`` clamped to start no
        earlier than the object's report time (we cannot extrapolate
        backwards) and to end no later than the object's trusted
        extrapolation span.
        """
        start = max(self.now, state.t)
        end = min(self.now + query.horizon, state.t + self.prediction_horizon)
        if end < start:
            return False
        return state.motion().time_in_rect(query.region, start, end) is not None

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _check_fresh_qid(self, qid: int) -> None:
        already_pending = any(
            q.qid == qid for q in self._pending_registrations
        )
        if qid in self.queries or already_pending:
            raise KeyError(f"query {qid} is already registered")

    def check_invariants(self) -> None:
        """Verify the object/query membership bookkeeping (tests only)."""
        for oid, state in self.objects.items():
            for qid in state.answered:
                assert oid in self.queries[qid].answer, (oid, qid)
        for qid, query in self.queries.items():
            for oid in query.answer:
                assert qid in self.objects[oid].answered, (qid, oid)
            assert self.index.contains_query(qid)
        for oid in self.objects:
            assert self.index.contains_object(oid)
