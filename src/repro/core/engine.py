"""The shared, incremental continuous-query engine.

This is the paper's contribution (Section 3): one uniform grid holds
both objects and queries ("queries are indexed in the same way as data");
location reports and query movements are *buffered* and evaluated in
bulk; each evaluation emits only positive/negative updates relative to
the previously reported answers.

Incrementality per query kind:

* **Range** — when a query's region moves from ``A_old`` to ``A_new``,
  answer members outside ``A_new`` produce negative updates, and only
  the difference area ``A_new - A_old`` is searched for positives ("the
  area A_new ∩ A_old does not need to be reevaluated where the query
  result of this area is already reported").  Object moves touch only
  the queries sharing a grid cell with the object's old or new position.
* **k-NN** — maintained as the smallest circle containing the k nearest
  objects.  Object movement marks a k-NN query dirty only when the move
  touches the circle's grid footprint (or the object was an answer
  member); dirty queries are re-solved with an expanding ring search
  around their center and the *answer difference* is emitted.
* **Predictive range** — objects carrying velocity vectors are indexed
  by the grid footprint of their predicted trajectory; a predictive
  query's answer is the set of objects whose extrapolated motion enters
  its region within the query's horizon.  Because the horizon window
  slides with evaluation time, predictive answers must be re-filtered
  from the query's (small) candidate cell set — but only when either
  the candidate set changed (report churn in the footprint cells) or
  the sliding window actually reached the next membership flip time.

Bulk evaluation itself runs as a **cell-batched pipeline** (the paper's
Section 3 point: buffered updates are evaluated as a grid-partition
spatial join, not one at a time).  The batch's object reports are
grouped by their (old cell set → new cell set) transition; each affected
cell's candidate query set is resolved exactly once per evaluation;
range membership checks run over per-cell object cohorts with one sort
per cohort; k-NN dirty-marking and predictive refresh are driven off the
same cohorts.  The seed per-object path is retained as
``pipeline="per-object"`` — it is the semantic reference the golden
equivalence tests and ``benchmarks/bench_bulk_pipeline.py`` compare
against.  ``pipeline="parallel"`` fans the cohort membership pass out
over row-striped grid shards on a worker pool (:mod:`repro.parallel`)
and merges per-shard deltas back in serial cohort order, emitting a
stream byte-identical to ``"cell-batched"``.  ``pipeline="columnar"``
keeps the same cohort grouping but replaces the per-pair Python loop
with batch array kernels over struct-of-arrays mirrors of object and
query state (:mod:`repro.columnar`) — numpy when available, stdlib
``array`` columns otherwise — again emitting a byte-identical stream.

Every phase of ``evaluate()`` is wall-clock timed: each phase runs
inside a :class:`repro.obs.Tracer` span (exported to Chrome trace JSON)
whose duration also accumulates into the engine's
``engine_phase_seconds_total{phase=...}`` counters on its
:class:`repro.obs.MetricsRegistry`.  The public ``stats`` property
still returns the familiar :class:`EngineStats` dataclass — now a
snapshot view over those registry instruments.

The engine is single-threaded and in-memory by design: persistence is
layered on by :class:`repro.core.server.LocationAwareServer` through the
storage package, and transport by :mod:`repro.net`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.columnar import (
    KIND_KNN,
    KIND_PREDICTIVE,
    KIND_RANGE,
    MULTI_CELL,
    BatchIngest,
    ColumnarEvaluator,
    ColumnarObjectStore,
    ColumnarQueryStore,
    knn_search_columnar,
    resolve_backend,
)
from repro.core.knn import knn_search
from repro.core.state import (
    KnnQueryState,
    ObjectState,
    PredictiveQueryState,
    QueryKind,
    QueryState,
    RangeQueryState,
)
from repro.core.updates import Update, UpdateBatch, UpdateList
from repro.geometry import Point, Rect, Velocity
from repro.grid import Grid, GridIndex
from repro.obs import (
    NULL_FRESHNESS,
    NULL_RECORDER,
    FlightRecorder,
    FreshnessTracker,
    MetricsRegistry,
    Tracer,
)
from repro.parallel.merge import merge_ordered
from repro.parallel.planner import build_shard_payloads, plan_shards
from repro.parallel.pool import ParallelConfig, WorkerPool
from repro.parallel.worker import evaluate_shard

DEFAULT_WORLD = Rect(0.0, 0.0, 1.0, 1.0)

#: Shared "object is new, no previous cells" sentinel for the batched
#: pipeline's transition grouping.
_NO_CELLS: frozenset[int] = frozenset()


def _by_oid(state: ObjectState) -> int:
    """Sort key for cohort determinism (module-level: no closure rebuild)."""
    return state.oid


class _CellCandidates:
    """One cell's candidate queries, resolved once per evaluation.

    Range queries are flattened to ``(qid, min_x, min_y, max_x, max_y,
    answer)`` tuples (answer sets aliased, mutated in place) and split
    by whether the region fully covers the cell: for a cohort of
    objects that stayed inside the cell, a covering query's membership
    provably cannot change (the member set already equals the cell's
    residents), so ``covering_entries`` is skipped entirely for those
    cohorts.  ``all_qids`` is a snapshot of every query id overlapping
    the cell, used for candidate dedup across a transition's cells and
    for the answered sweep's already-covered test.
    """

    __slots__ = (
        "partial_entries",
        "covering_entries",
        "covering_qids",
        "knn_qids",
        "all_qids",
    )

    def __init__(
        self,
        partial_entries: list[tuple[int, float, float, float, float, set[int]]],
        covering_entries: list[tuple[int, float, float, float, float, set[int]]],
        knn_qids: list[int],
        all_qids: frozenset[int],
    ):
        self.partial_entries = partial_entries
        self.covering_entries = covering_entries
        self.covering_qids = frozenset(entry[0] for entry in covering_entries)
        self.knn_qids = knn_qids
        self.all_qids = all_qids


#: Shared instance for cells with no overlapping queries — in a sparse
#: world most cells are query-free, and building per-cell candidate
#: state for them would dominate small batches.
_NO_CANDIDATES = _CellCandidates([], [], [], _NO_CELLS)

#: The evaluation phases, in execution order.  Keys of
#: ``EngineStats.phase_seconds`` after the first evaluation.
EVALUATION_PHASES = (
    "unregistrations",
    "removals",
    "registrations",
    "query_moves",
    "object_reports",
    "knn_repair",
    "predictive_refresh",
)


@dataclass(slots=True)
class EngineStats:
    """A snapshot of the engine's work counters.

    The integer fields are *work* measures: how many buffered inputs
    each evaluation consumed and how much repair they triggered.
    ``phase_seconds`` adds wall-clock observability: cumulative seconds
    spent in each evaluation phase (keys are ``EVALUATION_PHASES``),
    populated from the first ``evaluate()`` on.  The benchmarks use both
    to explain where time goes; operators would use them to spot hot
    queries and mis-sized grids.

    The live values are registry instruments (``engine_*`` counters on
    :attr:`IncrementalEngine.registry`); :attr:`IncrementalEngine.stats`
    materialises this dataclass from them on every read, so the familiar
    surface survives while exporters see the same numbers.
    """

    evaluations: int = 0
    object_reports: int = 0
    object_removals: int = 0
    query_registrations: int = 0
    query_moves: int = 0
    query_unregistrations: int = 0
    knn_repairs: int = 0
    updates_emitted: int = 0
    phase_seconds: dict[str, float] = field(default_factory=dict)


class IncrementalEngine:
    """Shared execution + incremental evaluation over one grid.

    Parameters
    ----------
    world:
        The rectangle all locations live in (paper: the unit square).
    grid_size:
        N for the N x N uniform grid.
    prediction_horizon:
        How far (seconds) object trajectories are extrapolated when
        indexing predictive objects.  Every predictive query's horizon
        must fit inside it.
    pipeline:
        ``"cell-batched"`` (default) evaluates buffered object reports
        as per-cell cohorts — candidate queries are resolved once per
        cell transition and membership runs in bulk.  ``"per-object"``
        is the reference path that walks one report at a time; it emits
        the same update *set* per query (order within the object-report
        and predictive phases may differ) and exists for equivalence
        testing and benchmarking.  ``"parallel"`` is the cell-batched
        pipeline with the cohort membership pass fanned out over a
        worker pool: the grid is split into row-striped shards, each
        shard's cohorts are shipped as flat snapshots, shard-boundary
        cohorts run on the coordinator, and the per-shard deltas merge
        back in serial cohort order — the emitted update stream is
        byte-identical to ``"cell-batched"``.  ``"columnar"`` keeps the
        cell-batched cohort grouping but evaluates the membership pass
        as batch array kernels over struct-of-arrays state mirrors
        (:mod:`repro.columnar`); the update stream is byte-identical to
        ``"cell-batched"`` as well.
    columnar_backend:
        Only meaningful with ``pipeline="columnar"``: ``"numpy"``
        (vectorized kernels; raises if numpy is missing), ``"python"``
        (pure-stdlib ``array`` kernels), or ``"auto"`` (default —
        numpy when importable, honouring the ``REPRO_COLUMNAR_BACKEND``
        environment override).
    parallelism:
        Only meaningful with ``pipeline="parallel"``: the shard/worker
        count as an int, or a full :class:`repro.parallel.ParallelConfig`
        (worker count, process/thread backend, inline-evaluation
        threshold).  ``None`` means ``ParallelConfig()`` —
        ``os.cpu_count()`` workers, processes when more than one.
        Engines running a parallel pipeline own a lazily-started
        worker pool; call :meth:`close` (or use the engine as a
        context manager) to release it.
    registry:
        The :class:`~repro.obs.MetricsRegistry` carrying the engine's
        counters, phase-second series, and grid-occupancy samples.
        Defaults to a private registry per engine (isolated stats);
        inject one — e.g. :func:`repro.obs.default_registry` — to
        aggregate several components into one exporter.  Pass
        :data:`repro.obs.NULL_REGISTRY` to turn metrics off.
    tracer:
        The :class:`~repro.obs.Tracer` receiving one span per
        evaluation phase.  Defaults to a private bounded tracer; the
        server shares it so cycle/downlink spans nest around the
        engine's.  Pass a :class:`repro.obs.NullTracer` to disable
        trace recording (phase-second counters keep working).
    emit_mode:
        ``"batch"`` (default) emits the update stream as an
        :class:`~repro.core.updates.UpdateBatch` — three parallel
        columns appended without per-change :class:`Update`
        allocation, materialised lazily on iteration.
        ``"materialized"`` emits a ``list[Update]`` through the same
        call sites (an :class:`~repro.core.updates.UpdateList`); it is
        the measurement baseline ``benchmarks/bench_columnar.py`` holds
        the batch representation against, and an escape hatch for
        callers that require eager elements.  Both modes produce the
        same values in the same order.
    """

    def __init__(
        self,
        world: Rect = DEFAULT_WORLD,
        grid_size: int = 64,
        prediction_horizon: float = 60.0,
        pipeline: str = "cell-batched",
        parallelism: "int | ParallelConfig | None" = None,
        columnar_backend: str = "auto",
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        freshness: "FreshnessTracker | None" = None,
        recorder: "FlightRecorder | None" = None,
        emit_mode: str = "batch",
    ):
        if prediction_horizon < 0:
            raise ValueError(
                f"prediction_horizon must be >= 0, got {prediction_horizon}"
            )
        if emit_mode not in ("batch", "materialized"):
            raise ValueError(
                f"emit_mode must be 'batch' or 'materialized', got {emit_mode!r}"
            )
        self.emit_mode = emit_mode
        if pipeline not in (
            "cell-batched",
            "per-object",
            "parallel",
            "columnar",
        ):
            raise ValueError(
                "pipeline must be 'cell-batched', 'per-object', 'parallel' "
                f"or 'columnar', got {pipeline!r}"
            )
        # Resolved before any state exists so a bad backend request
        # fails fast; None for the pipelines that never touch kernels.
        self.columnar_backend = (
            resolve_backend(columnar_backend) if pipeline == "columnar" else None
        )
        if isinstance(parallelism, ParallelConfig):
            self.parallel_config = parallelism
        elif parallelism is None:
            self.parallel_config = ParallelConfig()
        else:
            self.parallel_config = ParallelConfig(workers=int(parallelism))
        self._worker_pool: WorkerPool | None = None
        # Fault injection: forwarded to the worker pool on creation
        # (``hook(payload) -> bool``; True crashes that shard's future).
        # Exercises the reset-and-rerun-inline recovery path.
        self.worker_crash_hook = None
        self.grid = Grid(world, grid_size)
        self.index = GridIndex(self.grid)
        self.prediction_horizon = prediction_horizon
        self.pipeline = pipeline
        self.now = 0.0
        self.objects: dict[int, ObjectState] = {}
        self.queries: dict[int, QueryState] = {}
        # Buffered inputs, applied in bulk by evaluate().
        self._pending_reports: dict[int, tuple[Point, Velocity, float]] = {}
        self._pending_removals: set[int] = set()
        self._pending_registrations: list[QueryState] = []
        self._pending_moves: dict[int, tuple[object, float]] = {}
        self._pending_unregistrations: set[int] = set()
        # k-NN queries holding fewer than k objects must watch for any
        # population growth, not just movement near their circle.
        self._underfull_knn: set[int] = set()
        # Registered predictive query ids — the refresh phase consults
        # this instead of scanning every query of every kind.
        self._predictive_qids: set[int] = set()
        # Struct-of-arrays mirrors (repro.columnar).  The query store is
        # maintained under *every* pipeline: registrations and moves
        # cost a few array writes, and in exchange the parallel planner
        # serves its wire descriptors straight from the columns and the
        # columnar kernels get their bounds arrays with no rebuild.
        # The object store only exists under pipeline="columnar".
        self._qstore = ColumnarQueryStore()
        self._knn_qids: set[int] = set()
        self._ostore: ColumnarObjectStore | None = None
        self._columnar_evaluator: ColumnarEvaluator | None = None
        self._use_columnar_knn = False
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        # Freshness follows the registry's on/off state unless injected:
        # a NULL_REGISTRY engine must stay on the no-op path end to end
        # (the telemetry overhead gate compares exactly these two modes).
        if freshness is not None:
            self.freshness = freshness
        elif self.registry.enabled:
            self.freshness = FreshnessTracker(self.registry)
        else:
            self.freshness = NULL_FRESHNESS
        # The flight recorder is armed explicitly (chaos harness, tests,
        # the overhead benchmark's "on" arm); default is the no-op ring.
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        counter = self.registry.counter
        self._m_evaluations = counter("engine_evaluations_total")
        self._m_object_reports = counter("engine_object_reports_total")
        self._m_object_removals = counter("engine_object_removals_total")
        self._m_query_registrations = counter("engine_query_registrations_total")
        self._m_query_moves = counter("engine_query_moves_total")
        self._m_query_unregistrations = counter(
            "engine_query_unregistrations_total"
        )
        self._m_knn_repairs = counter("engine_knn_repairs_total")
        self._m_updates_emitted = counter("engine_updates_emitted_total")
        self._phase_counters = {
            name: counter("engine_phase_seconds_total", labels={"phase": name})
            for name in EVALUATION_PHASES
        }
        self._m_objects = self.registry.gauge("engine_objects")
        self._m_queries = self.registry.gauge("engine_queries")
        if pipeline == "parallel":
            # Per-shard wall time as reported by the workers themselves,
            # plus the operator's skew view: max/mean shard seconds of
            # the last dispatched batch (1.0 = perfectly balanced).
            self._m_shard_seconds = self.registry.histogram(
                "engine_shard_seconds"
            )
            self._m_shard_imbalance = self.registry.gauge(
                "engine_shard_imbalance"
            )
            self._m_sharded_cohorts = counter("engine_sharded_cohorts_total")
            self._m_boundary_cohorts = counter(
                "engine_boundary_cohorts_total"
            )
        if pipeline == "columnar":
            self._ostore = ColumnarObjectStore()
            self._columnar_evaluator = ColumnarEvaluator(
                self.grid,
                self.index,
                self._ostore,
                self._qstore,
                self.objects,
                self.queries,
                self._knn_qids,
                self.columnar_backend,
                self.registry,
                self.tracer,
            )
            # The vectorized ring search needs the coordinate columns as
            # ndarrays; the python backend's scalar search *is* the core
            # knn_search, so dispatch stays on the reference path there.
            self._use_columnar_knn = self.columnar_backend == "numpy"
        # Batch report ingest (phase 5a in array passes) serves the two
        # pipelines whose grouping cost is not the measurement baseline:
        # cell-batched stays on the serial loop as the equivalence (and
        # benchmark) reference.  Under the forced python columnar
        # backend the kernel stays off too — the stdlib leg then
        # exercises the scalar grouping plus the store's batched
        # python write path.
        self._batch_ingest: BatchIngest | None = None
        if pipeline == "parallel" or (
            pipeline == "columnar" and self.columnar_backend == "numpy"
        ):
            self._batch_ingest = BatchIngest(self, ObjectState, _NO_CELLS)
        self._m_ingest_seconds = counter("engine_ingest_seconds_total")

    # ------------------------------------------------------------------
    # Ingestion (buffered)
    # ------------------------------------------------------------------

    def report_object(
        self,
        oid: int,
        location: Point,
        t: float,
        velocity: Velocity = Velocity.ZERO,
    ) -> None:
        """Buffer a location report.  The last report per object wins
        within a batch (the server evaluates every T seconds; a device
        reporting twice within one period supersedes itself).

        Locations are clamped into the service area (the grid's world):
        the engine guarantees completeness only for in-world geometry,
        so out-of-world drift is pulled back to the boundary.
        """
        self._pending_removals.discard(oid)
        location = self.grid.world.clamp_point(location)
        self._pending_reports[oid] = (location, velocity, t)
        self.freshness.stamp_report(oid)

    def remove_object(self, oid: int) -> None:
        """Buffer an object's departure from the system.

        The object must be tracked or have a report buffered in this
        batch; removing an unknown id raises a ``KeyError`` naming it
        immediately (nothing is buffered), so a caller's id-management
        bug surfaces at the call site instead of as a silent no-op or
        an opaque index lookup failure later.
        """
        if oid not in self.objects and oid not in self._pending_reports:
            raise KeyError(f"cannot remove unknown object {oid}")
        self._pending_reports.pop(oid, None)
        self._pending_removals.add(oid)
        # The departure is this object's last provenance event: the
        # negative updates it triggers are attributed to it.
        self.freshness.stamp_report(oid)

    def register_range_query(self, qid: int, region: Rect, t: float = 0.0) -> None:
        """Register a continuous range query (stationary until moved).

        Regions are clipped to the service area — queries are answered
        over the world the server indexes, so the portion of a region
        hanging off the map can never hold an answer object.
        """
        self._check_fresh_qid(qid)
        region = self.grid.world.clip_or_pin(region)
        self._pending_registrations.append(RangeQueryState(qid, region, t))

    def register_knn_query(
        self, qid: int, center: Point, k: int, t: float = 0.0
    ) -> None:
        """Register a continuous k-NN query anchored at ``center``."""
        self._check_fresh_qid(qid)
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self._pending_registrations.append(KnnQueryState(qid, center, k, t))

    def register_predictive_query(
        self, qid: int, region: Rect, horizon: float, t: float = 0.0
    ) -> None:
        """Register a predictive range query looking ``horizon`` s ahead."""
        self._check_fresh_qid(qid)
        if not 0 < horizon <= self.prediction_horizon:
            raise ValueError(
                f"query horizon {horizon} must be in "
                f"(0, {self.prediction_horizon}]"
            )
        region = self.grid.world.clip_or_pin(region)
        self._pending_registrations.append(
            PredictiveQueryState(qid, region, horizon, t)
        )

    def move_range_query(self, qid: int, region: Rect, t: float) -> None:
        """Buffer a moving range query's new region (service-area clipped)."""
        self._pending_moves[qid] = (self.grid.world.clip_or_pin(region), t)

    def move_knn_query(self, qid: int, center: Point, t: float) -> None:
        """Buffer a moving k-NN query's new focal point."""
        self._pending_moves[qid] = (center, t)

    def move_predictive_query(self, qid: int, region: Rect, t: float) -> None:
        """Buffer a moving predictive query's new region (clipped)."""
        self._pending_moves[qid] = (self.grid.world.clip_or_pin(region), t)

    def unregister_query(self, qid: int) -> None:
        """Buffer a query's removal; no further updates will be emitted.

        Unregistering a query that was registered earlier in the *same*
        batch cancels the pending registration (arrival order wins),
        and unregistering a qid whose only trace is a buffered move
        cancels that move — the documented recovery path after
        ``evaluate()`` rejects a move targeting an unknown query.  A
        qid with no registration, pending registration, or pending
        move raises a ``KeyError`` naming it, with every buffer left
        intact.
        """
        if any(q.qid == qid for q in self._pending_registrations):
            self._pending_moves.pop(qid, None)
            self._pending_registrations = [
                q for q in self._pending_registrations if q.qid != qid
            ]
            return
        if qid in self.queries:
            self._pending_moves.pop(qid, None)
            self._pending_unregistrations.add(qid)
            return
        if self._pending_moves.pop(qid, None) is None:
            raise KeyError(f"cannot unregister unknown query {qid}")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the parallel worker pool, if one was ever started.

        A no-op for serial pipelines and for parallel engines that only
        ever evaluated inline; safe to call repeatedly.  The engine
        stays usable afterwards — the next large parallel batch simply
        starts a fresh pool.
        """
        if self._worker_pool is not None:
            self._worker_pool.close()
            self._worker_pool = None

    def __enter__(self) -> "IncrementalEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def stats(self) -> EngineStats:
        """The registry-backed work counters as an :class:`EngineStats`
        snapshot (the pre-telemetry public surface, unchanged)."""
        evaluations = int(self._m_evaluations.value)
        phase_seconds: dict[str, float] = {}
        if evaluations:
            phase_seconds = {
                name: c.value for name, c in self._phase_counters.items()
            }
        return EngineStats(
            evaluations=evaluations,
            object_reports=int(self._m_object_reports.value),
            object_removals=int(self._m_object_removals.value),
            query_registrations=int(self._m_query_registrations.value),
            query_moves=int(self._m_query_moves.value),
            query_unregistrations=int(self._m_query_unregistrations.value),
            knn_repairs=int(self._m_knn_repairs.value),
            updates_emitted=int(self._m_updates_emitted.value),
            phase_seconds=phase_seconds,
        )

    @property
    def object_count(self) -> int:
        return len(self.objects)

    @property
    def query_count(self) -> int:
        return len(self.queries)

    def answer_of(self, qid: int) -> frozenset[int]:
        """The current (last evaluated) answer set of ``qid``.

        Under the columnar pipeline this serves through the answer
        store's cached sorted array when one is live — so external
        readers (oracle, recovery) exercise store coherence — and
        falls back to the per-query ``set`` otherwise.
        """
        evaluator = self._columnar_evaluator
        if evaluator is not None:
            view = evaluator.answer_view(qid, self.queries[qid].answer)
            if view is not None:
                return view
        return frozenset(self.queries[qid].answer)

    def complete_answers(self) -> dict[int, frozenset[int]]:
        """Every query's full answer — what a snapshot server retransmits."""
        return {qid: frozenset(q.answer) for qid, q in self.queries.items()}

    # ------------------------------------------------------------------
    # Bulk evaluation
    # ------------------------------------------------------------------

    def evaluate(self, now: float | None = None) -> "UpdateBatch | UpdateList":
        """Apply all buffered input and return the incremental updates.

        Phases: unregistrations, object removals, new-query first-time
        answers, query moves, object moves, k-NN repair, predictive
        window refresh.  Applying the returned updates in order to the
        previously reported answers reproduces the current answers
        exactly (tested property).

        The return value is an :class:`~repro.core.updates.UpdateBatch`
        (or a ``list[Update]`` under ``emit_mode="materialized"``) —
        sequence-shaped either way: iterate, index, and compare it like
        the list it used to be.

        All buffered input is validated *before* any phase mutates state
        (a buffered move of an unknown query raises ``KeyError`` here,
        with the engine left exactly as it was — buffers included — so a
        bad move can never half-apply a batch).
        """
        if now is None:
            now = self.now
        if now < self.now:
            raise ValueError(f"time went backwards: {now} < {self.now}")
        self._validate_pending_moves()
        self.now = now

        recorder = self.recorder
        recorder.advance_cycle()
        recorder.record(
            "evaluate_begin",
            now=now,
            reports=len(self._pending_reports),
            removals=len(self._pending_removals),
            registrations=len(self._pending_registrations),
            moves=len(self._pending_moves),
        )
        self._m_evaluations.inc()
        self._m_object_reports.inc(len(self._pending_reports))
        self._m_object_removals.inc(len(self._pending_removals))
        self._m_query_registrations.inc(len(self._pending_registrations))
        self._m_query_moves.inc(len(self._pending_moves))
        self._m_query_unregistrations.inc(len(self._pending_unregistrations))

        updates: UpdateBatch | UpdateList = (
            UpdateBatch() if self.emit_mode == "batch" else UpdateList()
        )
        knn_dirty: set[int] = set(self._underfull_knn)
        # Cells whose object population (or a resident's motion state)
        # changed this evaluation — drives the predictive refresh.
        churned_cells: set[int] = set()
        # Predictive queries that must refresh regardless of cell churn
        # (registered or moved this batch).
        dirty_predictive: set[int] = set()
        pipeline = self.pipeline
        batched = pipeline != "per-object"
        tracer = self.tracer
        span = tracer.span
        phase_counters = self._phase_counters

        with span("evaluate"):
            with span("unregistrations", phase_counters["unregistrations"]):
                self._apply_unregistrations(knn_dirty)
            with span("removals", phase_counters["removals"]):
                self._apply_removals(updates, knn_dirty, churned_cells)
            with span("registrations", phase_counters["registrations"]):
                self._apply_registrations(updates, knn_dirty, dirty_predictive)
            with span("query_moves", phase_counters["query_moves"]):
                self._apply_query_moves(updates, knn_dirty, dirty_predictive)
            with span("object_reports", phase_counters["object_reports"]):
                if pipeline == "parallel":
                    self._apply_object_reports_parallel(
                        updates, knn_dirty, churned_cells
                    )
                elif pipeline == "columnar":
                    self._apply_object_reports_columnar(
                        updates, knn_dirty, churned_cells
                    )
                elif batched:
                    self._apply_object_reports_batched(
                        updates, knn_dirty, churned_cells
                    )
                else:
                    self._apply_object_reports(updates, knn_dirty)
            with span("knn_repair", phase_counters["knn_repair"]):
                self._repair_knn(knn_dirty, updates)
            with span(
                "predictive_refresh", phase_counters["predictive_refresh"]
            ):
                if batched:
                    self._refresh_predictive_batched(
                        updates, churned_cells, dirty_predictive
                    )
                else:
                    self._refresh_predictive(updates)
            with span("occupancy_sample"):
                self.index.sample_occupancy(self.registry)
        self._m_updates_emitted.inc(len(updates))
        self._m_objects.set(len(self.objects))
        self._m_queries.set(len(self.queries))
        self.freshness.end_cycle()
        recorder.record(
            "evaluate_end",
            now=now,
            updates=len(updates),
            objects=len(self.objects),
            queries=len(self.queries),
        )
        return updates

    def _validate_pending_moves(self) -> None:
        """Reject buffered moves that cannot resolve to a query.

        Runs before any phase mutates state: a move is valid if its
        target is currently registered (and not about to be
        unregistered in this same batch) or is registered earlier in
        this batch.  Raising here leaves every buffer intact, so the
        caller can drop the bad move (``unregister_query``) and
        re-evaluate.
        """
        if not self._pending_moves:
            return
        pending = None
        for qid in self._pending_moves:
            if qid in self.queries and qid not in self._pending_unregistrations:
                continue
            if pending is None:
                pending = {q.qid for q in self._pending_registrations}
            if qid not in pending:
                raise KeyError(f"cannot move unknown query {qid}")

    # ------------------------------------------------------------------
    # Phase 1-2: departures
    # ------------------------------------------------------------------

    def _apply_unregistrations(self, knn_dirty: set[int]) -> None:
        for qid in sorted(self._pending_unregistrations):
            query = self.queries.pop(qid, None)
            if query is None:
                continue
            self.index.remove_query(qid)
            self._qstore.remove(qid)
            self._knn_qids.discard(qid)
            self._underfull_knn.discard(qid)
            self._predictive_qids.discard(qid)
            if self._columnar_evaluator is not None:
                self._columnar_evaluator.invalidate_answer(qid)
            knn_dirty.discard(qid)
            for oid in query.answer:
                self.objects[oid].answered.discard(qid)
            self.freshness.forget_query(qid)
        self._pending_unregistrations.clear()

    def _apply_removals(
        self, updates, knn_dirty: set[int], churned_cells: set[int]
    ) -> None:
        ostore = self._ostore
        ingest = self._batch_ingest
        evaluator = self._columnar_evaluator
        for oid in sorted(self._pending_removals):
            state = self.objects.pop(oid, None)
            if state is None:
                continue
            churned_cells.update(self.index.object_cells(oid))
            self.index.remove_object(oid)
            if ingest is not None:
                ingest.forget(oid)
            if ostore is not None:
                ostore.remove(oid)
            for qid in sorted(state.answered):
                query = self.queries[qid]
                query.answer.discard(oid)
                if evaluator is not None:
                    evaluator.invalidate_answer(qid)
                updates.push(qid, oid, -1)
                if query.kind is QueryKind.KNN:
                    knn_dirty.add(qid)
        self._pending_removals.clear()

    # ------------------------------------------------------------------
    # Phase 3: first-time answers for new queries
    # ------------------------------------------------------------------

    def _apply_registrations(
        self,
        updates,
        knn_dirty: set[int],
        dirty_predictive: set[int],
    ) -> None:
        qstore = self._qstore
        for query in self._pending_registrations:
            self.queries[query.qid] = query
            if query.kind is QueryKind.RANGE:
                region = query.region
                qstore.put(
                    query.qid,
                    KIND_RANGE,
                    region.min_x,
                    region.min_y,
                    region.max_x,
                    region.max_y,
                )
                self.index.place_query_region(query.qid, region)
                self._fill_range_answer(query, updates)
            elif query.kind is QueryKind.KNN:
                qstore.put(query.qid, KIND_KNN)
                self._knn_qids.add(query.qid)
                # Placed at its center first; _repair_knn computes the
                # first-time answer and widens the footprint to the circle.
                self.index.place_query(
                    query.qid,
                    frozenset((self.grid.cell_of(query.center),)),
                )
                knn_dirty.add(query.qid)
            else:
                # Predictive: footprint now, answer in the refresh phase.
                qstore.put(query.qid, KIND_PREDICTIVE)
                self.index.place_query_region(query.qid, query.region)
                self._predictive_qids.add(query.qid)
                dirty_predictive.add(query.qid)
        self._pending_registrations.clear()

    def _fill_range_answer(self, query: RangeQueryState, updates) -> None:
        for oid in sorted(self.index.objects_overlapping(query.region)):
            state = self.objects[oid]
            if query.region.contains_point(state.location):
                query.answer.add(oid)
                state.answered.add(query.qid)
                updates.push(query.qid, oid, 1)

    # ------------------------------------------------------------------
    # Phase 4: query movement
    # ------------------------------------------------------------------

    def _apply_query_moves(
        self,
        updates,
        knn_dirty: set[int],
        dirty_predictive: set[int],
    ) -> None:
        for qid, (payload, t) in self._pending_moves.items():
            query = self.queries.get(qid)
            if query is None:
                # Unreachable after _validate_pending_moves; kept as a
                # defensive invariant.
                raise KeyError(f"cannot move unknown query {qid}")
            query.t = t
            if query.kind is QueryKind.RANGE:
                self._move_range(query, payload, updates)  # type: ignore[arg-type]
            elif query.kind is QueryKind.KNN:
                query.center = payload  # type: ignore[assignment]
                knn_dirty.add(qid)
            else:
                # Predictive regions re-filter in the refresh phase; only
                # the footprint needs to move now.  The store put keeps
                # the wire bounds zeroed — it exists for its version
                # bump, which invalidates the columnar evaluator's
                # cached cell entries for the footprint change.
                query.region = payload  # type: ignore[assignment]
                self.index.place_query_region(qid, payload)  # type: ignore[arg-type]
                self._qstore.put(qid, KIND_PREDICTIVE)
                if self._columnar_evaluator is not None:
                    self._columnar_evaluator.invalidate_answer(qid)
                dirty_predictive.add(qid)
        self._pending_moves.clear()

    def _move_range(
        self, query: RangeQueryState, new_region: Rect, updates
    ) -> None:
        old_region = query.region
        query.region = new_region

        # Negative updates: answer members in A_old - A_new.
        for oid in sorted(query.answer):
            if not new_region.contains_point(self.objects[oid].location):
                query.answer.discard(oid)
                self.objects[oid].answered.discard(query.qid)
                updates.push(query.qid, oid, -1)

        # Positive updates: search only A_new - A_old.
        for piece in new_region.difference(old_region):
            for oid in sorted(self.index.objects_overlapping(piece)):
                if oid in query.answer:
                    continue
                state = self.objects[oid]
                if piece.contains_point(state.location):
                    query.answer.add(oid)
                    state.answered.add(query.qid)
                    updates.push(query.qid, oid, 1)

        self.index.place_query_region(query.qid, new_region)
        self._qstore.put(
            query.qid,
            KIND_RANGE,
            new_region.min_x,
            new_region.min_y,
            new_region.max_x,
            new_region.max_y,
        )

    # ------------------------------------------------------------------
    # Phase 5: object movement
    # ------------------------------------------------------------------

    def _apply_object_reports(self, updates, knn_dirty: set[int]) -> None:
        """Reference path: one report at a time (``pipeline="per-object"``).

        Re-derives the colocated candidate query set for every single
        object; kept verbatim as the semantic baseline the cell-batched
        pipeline is benchmarked and equivalence-tested against.
        """
        for oid, (location, velocity, t) in self._pending_reports.items():
            state = self.objects.get(oid)
            if state is None:
                state = ObjectState(oid, location, velocity, t)
                self.objects[oid] = state
                old_cells: frozenset[int] = frozenset()
            else:
                old_cells = self.index.object_cells(oid)
                state.location = location
                state.velocity = velocity
                state.t = t
            self.index.place_object(oid, self._object_footprint(state))

            candidates = set(self.index.queries_colocated_with_object(oid))
            for cell in old_cells:
                candidates |= self.index.queries_in_cell(cell)
            candidates |= state.answered

            for qid in sorted(candidates):
                query = self.queries[qid]
                if query.kind is QueryKind.RANGE:
                    self._update_range_membership(query, state, updates)
                elif query.kind is QueryKind.KNN:
                    knn_dirty.add(qid)
                # Predictive membership is settled by the refresh phase.
        self._pending_reports.clear()

    def _apply_object_reports_batched(
        self, updates, knn_dirty: set[int], churned_cells: set[int]
    ) -> None:
        """Cell-batched pipeline: evaluate the whole batch as per-cell cohorts.

        5a. Apply every report to object state and the grid, grouping
            objects by their (old cells → new cells) transition.  The
            overwhelmingly common case — a non-predictive object whose
            footprint is one cell — is keyed by an int pair instead of
            frozensets, and an object whose footprint did not change
            skips the grid write entirely.
        5b. For each distinct transition, resolve the candidate query
            set **once** (zero-copy cell views, no per-object set
            copies, no per-object sort) and evaluate each candidate
            range query against the whole cohort in one inline pass
            with the region bounds and answer set hoisted out of the
            loop.  k-NN queries are dirty-marked per cohort.  A cohort
            is sorted once (not once per object), so emissions stay
            deterministically ordered.

        Emits exactly the same update set per query as the per-object
        path — each (query, object) pair is evaluated at most once per
        batch because the report buffer is already last-report-wins —
        but grouped by (transition, query) rather than by reporting
        object.
        """
        if not self._pending_reports:
            return
        with self.tracer.span("report_ingest", self._m_ingest_seconds):
            point_groups, set_groups = self._group_reports()
        cell_cache: dict[int, _CellCandidates] = {}
        for cells, states, stay_put, point_pair in self._iter_cohorts(
            point_groups, set_groups, churned_cells
        ):
            self._evaluate_cohort(
                cells,
                states,
                updates,
                knn_dirty,
                cell_cache,
                stay_put,
                point_pair=point_pair,
            )

    def _group_reports(
        self,
    ) -> tuple[
        dict[tuple[int, int], list[ObjectState]],
        dict[tuple[frozenset[int], frozenset[int]], list[ObjectState]],
    ]:
        """Phase 5a, serial reference: apply every buffered report to
        object state and the grid index, grouping objects by their cell
        transition.  Runs for the cell-batched pipeline (the
        equivalence baseline) and as the fallback when
        :class:`~repro.columnar.ingest.BatchIngest` is unavailable;
        clears the report buffer.  Columnar-store writes are collected
        per batch and flushed through
        :meth:`~repro.columnar.store.ColumnarObjectStore.batch_apply`
        — the scalar ``apply_report`` stays reserved for per-report
        callers."""
        reports = self._pending_reports
        objects = self.objects
        index = self.index
        grid = self.grid
        ostore = self._ostore
        if ostore is not None:
            o_oids: list[int] = []
            o_xs: list[float] = []
            o_ys: list[float] = []
            o_vxs: list[float] = []
            o_vys: list[float] = []
            o_ts: list[float] = []
            o_cells: list[int] = []
        # Hoisted home-cell arithmetic: same expression as Grid.cell_of
        # (division by the precomputed cell size), so cell assignment is
        # bit-identical to the per-object path on boundary coordinates.
        n = grid.n
        n1 = n - 1
        cell_w = grid.cell_width
        cell_h = grid.cell_height
        wmin_x = grid.world.min_x
        wmin_y = grid.world.min_y
        predictive_possible = self.prediction_horizon > 0

        # --- 5a: state + index updates, grouped by cell transition.
        # point_groups: (old_cell, new_cell) int pairs, -1 = new object.
        # set_groups: frozenset pairs for multi-cell (predictive) footprints.
        point_groups: dict[tuple[int, int], list[ObjectState]] = {}
        set_groups: dict[
            tuple[frozenset[int], frozenset[int]], list[ObjectState]
        ] = {}
        for oid, (location, velocity, t) in reports.items():
            state = objects.get(oid)
            if state is None:
                state = ObjectState(oid, location, velocity, t)
                objects[oid] = state
                old_cells = None
            else:
                old_cells = index.object_cells(oid)
                state.location = location
                state.velocity = velocity
                state.t = t
            # Inlined `not state.is_predictive` (Velocity.is_zero).
            if not predictive_possible or (
                velocity.vx == 0.0 and velocity.vy == 0.0
            ):
                col = int((location.x - wmin_x) / cell_w)
                if col < 0:
                    col = 0
                elif col > n1:
                    col = n1
                row = int((location.y - wmin_y) / cell_h)
                if row < 0:
                    row = 0
                elif row > n1:
                    row = n1
                new_cell = row * n + col
                if ostore is not None:
                    o_oids.append(oid)
                    o_xs.append(location.x)
                    o_ys.append(location.y)
                    o_vxs.append(velocity.vx)
                    o_vys.append(velocity.vy)
                    o_ts.append(t)
                    o_cells.append(new_cell)
                if old_cells is None:
                    index.place_object(oid, frozenset((new_cell,)))
                    key = (-1, new_cell)
                elif len(old_cells) == 1:
                    old_cell = next(iter(old_cells))
                    index.move_point_object(oid, old_cell, new_cell)
                    key = (old_cell, new_cell)
                else:
                    # Was predictive (multi-cell), now stationary.
                    new_cells = frozenset((new_cell,))
                    index.place_object(oid, new_cells)
                    self._group_into(set_groups, old_cells, new_cells, state)
                    continue
                cohort = point_groups.get(key)
                if cohort is None:
                    point_groups[key] = [state]
                else:
                    cohort.append(state)
            else:
                new_cells = self._object_footprint(state)
                if old_cells != new_cells:
                    index.place_object(oid, new_cells)
                if ostore is not None:
                    o_oids.append(oid)
                    o_xs.append(location.x)
                    o_ys.append(location.y)
                    o_vxs.append(velocity.vx)
                    o_vys.append(velocity.vy)
                    o_ts.append(t)
                    o_cells.append(grid.cell_of(location))
                self._group_into(
                    set_groups,
                    _NO_CELLS if old_cells is None else old_cells,
                    new_cells,
                    state,
                )
        if ostore is not None and o_oids:
            ostore.batch_apply(o_oids, o_xs, o_ys, o_vxs, o_vys, o_ts, o_cells)
        reports.clear()
        return point_groups, set_groups

    def _group_reports_batched(self, want_columns: bool = False):
        """Phase 5a via :class:`~repro.columnar.ingest.BatchIngest` when
        it can run, the serial loop otherwise.  Returns ``(point_groups,
        set_groups, point_columns)``; ``point_columns`` is ``None``
        unless the batch kernel ran with ``want_columns`` (the parallel
        planner's payload columns)."""
        ingest = self._batch_ingest
        if ingest is not None and ingest.enabled:
            grouped = ingest.group(self._pending_reports, want_columns)
            if grouped is not None:
                return grouped
        point_groups, set_groups = self._group_reports()
        return point_groups, set_groups, None

    def _iter_cohorts(self, point_groups, set_groups, churned_cells: set[int]):
        """Phase 5b's work list: yield ``(cells, states, stay_put,
        point_pair)`` per transition cohort, in the exact order the
        cell-batched pipeline evaluates (and therefore emits) them —
        the parallel pipeline's sequence numbers come from this order.
        Accumulates cell churn for the predictive refresh as a side
        effect.  ``cells`` is always an ordered tuple: the parallel
        planner ships it to workers verbatim, and tuple-izing a
        frozenset here preserves the iteration order the serial pass
        would have used.
        """
        for (old_cell, new_cell), states in point_groups.items():
            churned_cells.add(new_cell)
            if old_cell >= 0 and old_cell != new_cell:
                churned_cells.add(old_cell)
                yield (old_cell, new_cell), states, False, True
            else:
                yield (new_cell,), states, old_cell == new_cell, False
        for (old_cells, new_cells), states in set_groups.items():
            churned_cells.update(new_cells)
            if old_cells is not _NO_CELLS and old_cells != new_cells:
                churned_cells.update(old_cells)
            if old_cells is _NO_CELLS or old_cells == new_cells:
                cells = new_cells
            else:
                cells = old_cells | new_cells
            yield tuple(cells), states, False, False

    def _apply_object_reports_columnar(
        self, updates, knn_dirty: set[int], churned_cells: set[int]
    ) -> None:
        """Columnar pipeline: phase 5a grouping exactly as in the
        cell-batched pipeline, then one batch kernel pass over every
        cohort.

        The evaluator plans the batch's ragged (cohort × candidate
        entry × member) join from the struct-of-arrays mirrors,
        classifies every pair's membership transition in bulk, and
        re-emits the changed pairs in serial cohort order — the update
        stream is byte-identical to ``pipeline="cell-batched"``.
        """
        if not self._pending_reports:
            return
        with self.tracer.span("report_ingest", self._m_ingest_seconds):
            point_groups, set_groups, __ = self._group_reports_batched()
        cohorts = list(
            self._iter_cohorts(point_groups, set_groups, churned_cells)
        )
        if cohorts:
            emitted_before = len(updates)
            self._columnar_evaluator.run(cohorts, updates, knn_dirty)
            self.recorder.record(
                "columnar_batch",
                cohorts=len(cohorts),
                emitted=len(updates) - emitted_before,
            )

    def _apply_object_reports_parallel(
        self, updates, knn_dirty: set[int], churned_cells: set[int]
    ) -> None:
        """Parallel pipeline: fan the cohort membership pass out over
        row-striped grid shards.

        Phase 5a (state + index updates, transition grouping) runs on
        the coordinator exactly as in the cell-batched pipeline — it
        mutates shared structures and is cheap relative to the join.
        The planner then assigns every cohort either to the single
        shard owning all its cells or to the boundary set; shard work
        ships to the pool as flat snapshots, boundary cohorts run here
        while the workers chew, and the merge re-emits everything in
        serial cohort order so the update stream is byte-identical to
        ``pipeline="cell-batched"``.

        Small batches (fewer than ``parallel_config.min_batch``
        buffered reports), single-worker configs, and single-cohort
        batches skip the dispatch entirely and run the serial cohort
        loop — same output, none of the snapshot overhead.
        """
        n_reports = len(self._pending_reports)
        if not n_reports:
            return
        with self.tracer.span("report_ingest", self._m_ingest_seconds):
            point_groups, set_groups, point_columns = (
                self._group_reports_batched(want_columns=True)
            )
        cohorts = list(
            self._iter_cohorts(point_groups, set_groups, churned_cells)
        )
        config = self.parallel_config
        cell_cache: dict[int, _CellCandidates] = {}
        if (
            config.workers <= 1
            or n_reports < config.min_batch
            or len(cohorts) < 2
        ):
            for cells, states, stay_put, point_pair in cohorts:
                self._evaluate_cohort(
                    cells,
                    states,
                    updates,
                    knn_dirty,
                    cell_cache,
                    stay_put,
                    point_pair=point_pair,
                )
            return

        tracer = self.tracer
        recorder = self.recorder
        # Trace context crosses the pool inside the payload: the current
        # span id (the object_reports span) parents every worker's phase
        # spans, and the dispatch anchor lets record_remote re-express
        # worker-relative timings on the coordinator clock.
        parent_span_id = tracer.current_span_id
        with tracer.span("shard_plan"):
            plan = plan_shards(cohorts, self.grid, config.workers)
            # Batch-ingested point cohorts ship their payload rows from
            # the kernel's already-sorted column slices; set cohorts
            # (and serial-fallback rounds) walk member states as before.
            cohort_columns = None
            if point_columns is not None:
                cohort_columns = [
                    point_columns[key] for key in point_groups
                ]
                cohort_columns.extend([None] * len(set_groups))
            payloads = build_shard_payloads(
                plan,
                self.grid,
                self.index,
                self.queries,
                self._qstore,
                trace_ctx=(parent_span_id,),
                cohort_columns=cohort_columns,
            )
        self._m_sharded_cohorts.inc(plan.dispatched)
        self._m_boundary_cohorts.inc(len(plan.boundary))
        if self._worker_pool is None:
            self._worker_pool = WorkerPool(config)
        pool = self._worker_pool
        pool.crash_hook = self.worker_crash_hook
        pool.recorder = recorder if recorder.enabled else None
        dispatch_anchor = tracer.now()
        futures = pool.submit(evaluate_shard, payloads)
        recorder.record(
            "shard_dispatch",
            shards=len(payloads),
            cohorts=plan.dispatched,
            boundary=len(plan.boundary),
        )

        # Boundary cohorts overlap with the in-flight shard work: they
        # touch only their own objects, and per-pair outcomes are
        # independent of the snapshot-isolated workers.
        boundary_updates: dict[int, object] = {}
        with tracer.span("boundary_cohorts"):
            for seq, cells, states, stay_put, point_pair in plan.boundary:
                cohort_updates = updates.__class__()
                self._evaluate_cohort(
                    cells,
                    states,
                    cohort_updates,
                    knn_dirty,
                    cell_cache,
                    stay_put,
                    point_pair=point_pair,
                )
                boundary_updates[seq] = cohort_updates

        shard_deltas: dict[int, list[tuple[int, int, int]]] = {}
        shard_seconds: list[float] = []
        for payload, future in zip(payloads, futures):
            with tracer.span(f"shard-{payload[0]}"):
                try:
                    __, elapsed, results, remote = future.result()
                except Exception as exc:
                    # A dying worker cannot have corrupted anything —
                    # payloads are pure snapshots — so reset the pool
                    # and run this shard's snapshot inline.
                    recorder.trigger(
                        "worker_crash",
                        shard=payload[0],
                        error=type(exc).__name__,
                    )
                    pool.reset()
                    __, elapsed, results, remote = evaluate_shard(payload)
            # Re-anchor the worker's phase spans under the dispatching
            # span: worker timings are relative to its own start, which
            # is never earlier than the dispatch, so [anchor, anchor +
            # elapsed] nests inside this cycle's object_reports span.
            span_parent, remote_spans = remote
            tracer.record_remote(
                remote_spans,
                dispatch_anchor,
                tid=payload[0] + 1,
                parent_id=span_parent,
            )
            shard_seconds.append(elapsed)
            self._m_shard_seconds.observe(elapsed)
            for seq, deltas, knn_qids in results:
                if deltas:
                    shard_deltas[seq] = deltas
                if knn_qids:
                    knn_dirty.update(knn_qids)
        if shard_seconds:
            mean = sum(shard_seconds) / len(shard_seconds)
            self._m_shard_imbalance.set(
                max(shard_seconds) / mean if mean > 0.0 else 1.0
            )
        with tracer.span("shard_merge"):
            boundary_emitted, shard_emitted = merge_ordered(
                plan.total,
                boundary_updates,
                shard_deltas,
                self.queries,
                self.objects,
                updates,
            )
        recorder.record(
            "shard_merge",
            boundary_emitted=boundary_emitted,
            shard_emitted=shard_emitted,
        )

    @staticmethod
    def _group_into(groups, old_cells, new_cells, state):
        key = (old_cells, new_cells)
        cohort = groups.get(key)
        if cohort is None:
            groups[key] = [state]
        else:
            cohort.append(state)

    def _cell_candidates(self, cell: int) -> "_CellCandidates":
        """Resolve one cell's candidate queries for the batched phase 5.

        Range queries are flattened to ``(qid, bounds..., answer)``
        tuples so the cohort loop needs no per-pair attribute chasing;
        the region bounds are stable for the whole phase (query moves
        happened in phase 4) and ``answer`` is aliased, so in-place
        mutations stay visible.
        """
        cell_qids = self.index.queries_in_cell(cell)
        if not cell_qids:
            return _NO_CANDIDATES
        queries = self.queries
        # Inline Grid.cell_rect: same arithmetic, minus a Rect allocation
        # and the repeated cell_width/cell_height property divisions.
        grid = self.grid
        world = grid.world
        cell_w = grid.cell_width
        cell_h = grid.cell_height
        row, col = divmod(cell, grid.n)
        c_min_x = world.min_x + col * cell_w
        c_min_y = world.min_y + row * cell_h
        c_max_x = world.min_x + (col + 1) * cell_w
        c_max_y = world.min_y + (row + 1) * cell_h
        partial_entries = []
        covering_entries = []
        knn_qids = []
        for qid in cell_qids:
            query = queries[qid]
            kind = query.kind
            if kind is QueryKind.RANGE:
                region = query.region
                entry = (
                    qid,
                    region.min_x,
                    region.min_y,
                    region.max_x,
                    region.max_y,
                    query.answer,
                )
                if (
                    region.min_x <= c_min_x
                    and region.min_y <= c_min_y
                    and region.max_x >= c_max_x
                    and region.max_y >= c_max_y
                ):
                    covering_entries.append(entry)
                else:
                    partial_entries.append(entry)
            elif kind is QueryKind.KNN:
                knn_qids.append(qid)
        partial_entries.sort()
        covering_entries.sort()
        knn_qids.sort()
        return _CellCandidates(
            partial_entries,
            covering_entries,
            knn_qids,
            frozenset(cell_qids),
        )

    def _evaluate_cohort(
        self,
        cells,
        states: list[ObjectState],
        updates,
        knn_dirty: set[int],
        cell_cache: dict[int, "_CellCandidates"],
        stay_put: bool,
        point_pair: bool = False,
    ) -> None:
        """Check one transition cohort against its candidate queries.

        ``cells`` is the union of the cohort's old and new cells; every
        query whose membership can have changed for a cohort member
        either overlaps one of those cells or already holds the member
        in its answer (covered by the trailing answered sweep, which is
        provably empty except for off-world clamping corner cases).

        ``stay_put`` marks a single-cell cohort whose members did not
        change home cell: range queries fully covering that cell are
        then skipped — the old and new locations are both inside the
        region, so each member already is (and stays) an answer member.
        ``point_pair`` marks a two-cell cohort of single-cell objects;
        for it the same argument skips queries covering *both* cells.
        """
        push = updates.push
        multi = len(cells) > 1
        cached_cells = []
        for cell in cells:
            cached = cell_cache.get(cell)
            if cached is None:
                cached = cell_cache[cell] = self._cell_candidates(cell)
            cached_cells.append(cached)
            if cached.knn_qids:
                knn_dirty.update(cached.knn_qids)
        skip_cover: frozenset[int] = _NO_CELLS
        if point_pair and len(cached_cells) == 2:
            skip_cover = (
                cached_cells[0].covering_qids & cached_cells[1].covering_qids
            )
        single = None
        if len(states) == 1:
            single = states[0]
            location = single.location
            sx = location.x
            sy = location.y
            soid = single.oid
            answered = single.answered
        else:
            states.sort(key=_by_oid)
            # Coordinates unpacked once per cohort, not once per
            # (query, object) pair.
            coords = [
                (state.location.x, state.location.y, state.oid, state)
                for state in states
            ]
        seen_qids: frozenset[int] | set[int] = _NO_CELLS
        if multi:
            seen_qids = set()
        for cached in cached_cells:
            if stay_put:
                entry_lists = (cached.partial_entries,)
            else:
                entry_lists = (cached.partial_entries, cached.covering_entries)
            for entries in entry_lists:
                if single is not None:
                    for qid, min_x, min_y, max_x, max_y, answer in entries:
                        if multi and (qid in seen_qids or qid in skip_cover):
                            continue
                        if min_x <= sx <= max_x and min_y <= sy <= max_y:
                            if soid not in answer:
                                answer.add(soid)
                                answered.add(qid)
                                push(qid, soid, 1)
                        elif soid in answer:
                            answer.discard(soid)
                            answered.discard(qid)
                            push(qid, soid, -1)
                else:
                    for qid, min_x, min_y, max_x, max_y, answer in entries:
                        if multi and (qid in seen_qids or qid in skip_cover):
                            continue
                        for x, y, oid, state in coords:
                            if min_x <= x <= max_x and min_y <= y <= max_y:
                                if oid not in answer:
                                    answer.add(oid)
                                    state.answered.add(qid)
                                    push(qid, oid, 1)
                            elif oid in answer:
                                answer.discard(oid)
                                state.answered.discard(qid)
                                push(qid, oid, -1)
            if multi:
                seen_qids.update(cached.all_qids)  # type: ignore[union-attr]
            else:
                seen_qids = cached.all_qids
        # Answered sweep: queries the object no longer shares a cell
        # with (it left their footprint entirely) still owe a check.
        queries = self.queries
        for state in states:
            answered = state.answered
            if not answered or answered <= seen_qids:
                continue
            for qid in sorted(answered - seen_qids):
                query = queries[qid]
                kind = query.kind
                if kind is QueryKind.RANGE:
                    self._update_range_membership(query, state, updates)
                elif kind is QueryKind.KNN:
                    knn_dirty.add(qid)

    def _update_range_membership(
        self, query: RangeQueryState, state: ObjectState, updates
    ) -> None:
        inside = query.region.contains_point(state.location)
        was_member = state.oid in query.answer
        if inside and not was_member:
            query.answer.add(state.oid)
            state.answered.add(query.qid)
            updates.push(query.qid, state.oid, 1)
        elif not inside and was_member:
            query.answer.discard(state.oid)
            state.answered.discard(query.qid)
            updates.push(query.qid, state.oid, -1)

    def _object_footprint(self, state: ObjectState) -> frozenset[int]:
        if state.is_predictive and self.prediction_horizon > 0:
            rect = state.motion().bounding_rect_until(
                state.t + self.prediction_horizon
            )
            cells = self.grid.cells_overlapping_set(rect)
            if cells:
                return cells
            # The whole predicted trajectory lies outside the world
            # (the object drifted off the map): clamp to the nearest
            # cell so the object keeps a deterministic home.
        return frozenset((self.grid.cell_of(state.location),))

    # ------------------------------------------------------------------
    # Phase 6: k-NN repair
    # ------------------------------------------------------------------

    def _repair_knn(self, knn_dirty: set[int], updates) -> None:
        for qid in sorted(knn_dirty):
            query = self.queries.get(qid)
            if query is None or query.kind is not QueryKind.KNN:
                continue
            self._m_knn_repairs.inc()
            self._solve_knn(query, updates)

    def _solve_knn(self, query: KnnQueryState, updates) -> None:
        """Re-solve a dirty k-NN query and emit the answer difference.

        The ring search starts from the query's center and is bounded by
        the k-th distance, so the work stays local to the circle — the
        shared-grid analogue of the paper's "evict the furthest / admit
        the entrant" circle maintenance, with the search doubling as the
        replacement lookup when members depart.
        """
        if self._use_columnar_knn:
            ranked = knn_search_columnar(
                self.index, self._ostore, query.center, query.k
            )
        else:
            ranked = knn_search(self.index, self.objects, query.center, query.k)
        new_answer = {oid for __, oid in ranked}

        for oid in sorted(query.answer - new_answer):
            query.answer.discard(oid)
            self.objects[oid].answered.discard(query.qid)
            updates.push(query.qid, oid, -1)
        for oid in sorted(new_answer - query.answer):
            query.answer.add(oid)
            self.objects[oid].answered.add(query.qid)
            updates.push(query.qid, oid, 1)
        if self._columnar_evaluator is not None:
            # Membership can change without changing length (one out,
            # one in), so the store's len-check alone cannot detect it.
            self._columnar_evaluator.invalidate_answer(query.qid)

        query.radius = ranked[-1][0] if ranked else 0.0
        footprint = self.grid.cells_overlapping_set(
            query.circle().bounding_rect()
        )
        if not footprint:  # center outside the world: clamp to home cell
            footprint = frozenset((self.grid.cell_of(query.center),))
        self.index.place_query(query.qid, footprint)

        if len(query.answer) < query.k:
            self._underfull_knn.add(query.qid)
        else:
            self._underfull_knn.discard(query.qid)

    # ------------------------------------------------------------------
    # Phase 7: predictive window refresh
    # ------------------------------------------------------------------

    def _refresh_predictive(self, updates) -> None:
        """Reference path: re-filter every predictive query, every cycle."""
        for qid, query in self.queries.items():
            if query.kind is not QueryKind.PREDICTIVE_RANGE:
                continue
            self._refresh_one_predictive(qid, query, updates, False)

    def _refresh_predictive_batched(
        self,
        updates,
        churned_cells: set[int],
        dirty_predictive: set[int],
    ) -> None:
        """Refresh only predictive queries that can actually change.

        A predictive answer depends on (a) the query's region/horizon,
        (b) the states of its candidate objects, and (c) the evaluation
        time (the horizon window slides).  (a) is covered by
        ``dirty_predictive`` (registered/moved this batch), (b) by cell
        churn — every candidate's footprint intersects the query's
        footprint, so any candidate change churns a footprint cell —
        and (c) by the ``next_flip`` event time computed during the
        previous refresh: the earliest time the sliding window can flip
        some candidate's membership.  Anything else is provably a
        no-op and is skipped.
        """
        predictive_qids = self._predictive_qids
        if not predictive_qids:
            return
        need = dirty_predictive
        if churned_cells:
            index = self.index
            for cell in churned_cells:
                for qid in index.queries_in_cell(cell):
                    if qid in predictive_qids:
                        need.add(qid)
        now = self.now
        queries = self.queries
        for qid in sorted(predictive_qids):
            query = queries[qid]
            if qid in need:
                # Churn-driven refresh: under sustained churn a flip
                # schedule would be recomputed every cycle and never
                # consulted, so don't pay for one — the first quiet
                # evaluation refreshes once more (next_flip == -inf)
                # and computes the schedule then.
                self._refresh_one_predictive(qid, query, updates, False)
            elif query.next_flip <= now:
                self._refresh_one_predictive(qid, query, updates, True)

    def _refresh_one_predictive(
        self,
        qid: int,
        query: PredictiveQueryState,
        updates,
        compute_flip: bool,
    ) -> None:
        candidates = set(query.answer)
        index = self.index
        for cell in index.query_cells(qid):
            candidates.update(index.objects_in_cell(cell))
        objects = self.objects
        answer = query.answer
        next_flip = math.inf
        ordered = sorted(candidates)
        evaluator = self._columnar_evaluator
        if (
            not compute_flip
            and evaluator is not None
            and ordered
            and evaluator.refresh_predictive(
                qid,
                query,
                ordered,
                self.now,
                query.horizon,
                self.prediction_horizon,
                updates,
            )
        ):
            # Columnar delta path: membership and emission are handled
            # entirely from the sorted answer array (candidates ⊇
            # answer, so ordered[inside] is the complete new answer).
            query.next_flip = float("-inf")
            return
        flags = None
        if evaluator is not None:
            # The scalar loop below mutates the answer without updating
            # the evaluator's sorted array; drop it so the next
            # vectorized refresh rebuilds from the live set.
            evaluator.invalidate_answer(qid)
        if evaluator is not None and ordered:
            # Columnar pipeline: one vectorized membership pass over the
            # candidate rows (bit-identical to the scalar check; None
            # under the pure-Python backend).
            flags = self._columnar_evaluator.predicted_inside(
                ordered,
                query.region,
                self.now,
                query.horizon,
                self.prediction_horizon,
            )
        for pos, oid in enumerate(ordered):
            state = objects[oid]
            inside = (
                flags[pos]
                if flags is not None
                else self._predicted_in_region(query, state)
            )
            was_member = oid in answer
            if inside and not was_member:
                answer.add(oid)
                state.answered.add(qid)
                updates.push(qid, oid, 1)
            elif not inside and was_member:
                answer.discard(oid)
                state.answered.discard(qid)
                updates.push(qid, oid, -1)
            if compute_flip:
                flip = self._membership_flip_time(query, state, inside)
                if flip < next_flip:
                    next_flip = flip
        if not compute_flip:
            query.next_flip = float("-inf")
        elif math.isinf(next_flip):
            query.next_flip = next_flip
        else:
            # Small relative safety margin: the flip time is derived
            # from one trajectory clipping over the full trusted span,
            # while membership itself is recomputed per-window; the
            # margin absorbs any floating-point disagreement between
            # the two so a refresh can only ever fire early, never
            # late.
            query.next_flip = next_flip - 1e-9 * (1.0 + abs(next_flip))

    def _membership_flip_time(
        self, query: PredictiveQueryState, state: ObjectState, inside: bool
    ) -> float:
        """The earliest evaluation time at which ``state``'s membership in
        ``query`` can change with *no further reports* — i.e. purely
        because the horizon window ``[now, now + horizon]`` slides.

        For linear motion inside a convex region the in-region times
        form one interval ``[enters, leaves]`` (within the object's
        trusted extrapolation span).  A current member stays a member
        until the window start passes ``leaves``; a non-member becomes
        one when the window end reaches ``enters``.  ``inf`` means the
        membership can never change without churn.
        """
        span_start = max(self.now, state.t)
        span_end = state.t + self.prediction_horizon
        if span_end < span_start:
            # The trusted extrapolation span is entirely in the past:
            # membership is False and stays False until a new report.
            return math.inf
        interval = state.motion().time_in_rect(
            query.region, span_start, span_end
        )
        if interval is None:
            # Never in the region within the trusted span.  If the
            # windowed check nevertheless said "inside" (conceivable
            # only through floating-point disagreement), stay safe by
            # refreshing every evaluation.
            return -math.inf if inside else math.inf
        enters, leaves = interval
        if inside:
            return leaves
        return enters - query.horizon

    def _predicted_in_region(
        self, query: PredictiveQueryState, state: ObjectState
    ) -> bool:
        """Will ``state`` be inside the query region within its horizon?

        The window is ``[now, now + horizon]`` clamped to start no
        earlier than the object's report time (we cannot extrapolate
        backwards) and to end no later than the object's trusted
        extrapolation span.
        """
        start = max(self.now, state.t)
        end = min(self.now + query.horizon, state.t + self.prediction_horizon)
        if end < start:
            return False
        return state.motion().time_in_rect(query.region, start, end) is not None

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _check_fresh_qid(self, qid: int) -> None:
        already_pending = any(
            q.qid == qid for q in self._pending_registrations
        )
        if qid in self.queries or already_pending:
            raise KeyError(f"query {qid} is already registered")

    def check_invariants(self) -> None:
        """Verify the object/query membership bookkeeping (tests only)."""
        for oid, state in self.objects.items():
            for qid in state.answered:
                assert oid in self.queries[qid].answer, (oid, qid)
        for qid, query in self.queries.items():
            for oid in query.answer:
                assert qid in self.objects[oid].answered, (qid, oid)
            assert self.index.contains_query(qid)
        for oid in self.objects:
            assert self.index.contains_object(oid)
        for qid in self._predictive_qids:
            assert self.queries[qid].kind is QueryKind.PREDICTIVE_RANGE
        # Any live answer-store view must agree with the set it mirrors.
        evaluator = self._columnar_evaluator
        if evaluator is not None:
            for qid, query in self.queries.items():
                view = evaluator.answer_view(qid, query.answer)
                assert view is None or view == query.answer, qid
        # Struct-of-arrays mirrors stay coherent with the dataclass state.
        qstore = self._qstore
        assert len(qstore) == len(self.queries)
        assert self._knn_qids == {
            qid
            for qid, query in self.queries.items()
            if query.kind is QueryKind.KNN
        }
        for qid, query in self.queries.items():
            kind, min_x, min_y, max_x, max_y = qstore.descriptor(qid)
            if query.kind is QueryKind.RANGE:
                region = query.region
                assert kind == KIND_RANGE and (
                    min_x,
                    min_y,
                    max_x,
                    max_y,
                ) == (
                    region.min_x,
                    region.min_y,
                    region.max_x,
                    region.max_y,
                ), qid
            elif query.kind is QueryKind.KNN:
                assert kind == KIND_KNN, qid
            else:
                assert kind == KIND_PREDICTIVE, qid
        ostore = self._ostore
        if ostore is not None:
            assert len(ostore) == len(self.objects)
            for oid, state in self.objects.items():
                row = ostore.row_of(oid)
                location = state.location
                assert ostore.xs[row] == location.x, oid
                assert ostore.ys[row] == location.y, oid
        # The batch-ingest dense oid→cell column mirrors the grid
        # index's object placements exactly (while enabled; a disabled
        # kernel's column is dead state and never read again).
        ingest = self._batch_ingest
        if (
            ingest is not None
            and ingest.enabled
            and ingest._cell_by_oid is not None
        ):
            for oid in self.objects:
                hint = ingest.cell_hint(oid)
                assert hint is not None, oid
                cells = self.index.object_cells(oid)
                if hint == MULTI_CELL:
                    assert len(cells) > 1, (oid, cells)
                else:
                    assert cells == frozenset((hint,)), (oid, hint, cells)
