"""Grid-based k-nearest-neighbour search.

The engine computes a k-NN query's first-time answer (and replacement
neighbours after departures) with an expanding ring search over the
shared grid: examine the query's home cell, then the rings of cells
around it, stopping once the k-th best distance found so far is closer
than anything an unexplored ring could contain.
"""

from __future__ import annotations

import heapq
from collections.abc import Mapping

from repro.core.state import ObjectState
from repro.geometry import Point
from repro.grid import GridIndex


def knn_search(
    index: GridIndex,
    objects: Mapping[int, ObjectState],
    center: Point,
    k: int,
    exclude: set[int] | None = None,
) -> list[tuple[float, int]]:
    """The (distance, oid) list of the k nearest objects to ``center``.

    Sorted ascending by distance with ties broken by oid, which makes
    the result deterministic and lets tests compare against a brute-force
    oracle exactly.  Returns fewer than ``k`` entries when the population
    is smaller.  ``exclude`` skips specific oids — the replacement-search
    path excludes the surviving answer members when refilling a k-NN
    answer after a departure.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    grid = index.grid
    home = grid.cell_of(center)
    max_radius = grid.max_ring_radius(home)
    # Ring r is at least (r - 1) cell extents from the center (the
    # center sits somewhere inside the home cell), so once the k-th best
    # distance beats that bound no further ring can improve the answer.
    cell_extent = min(grid.cell_width, grid.cell_height)

    # Max-heap of the k best candidates, keyed by negated (distance, oid)
    # so the lexicographically worst candidate sits at heap[0].
    heap: list[tuple[float, int]] = []
    seen: set[int] = set()
    for radius in range(max_radius + 1):
        if len(heap) == k and (radius - 1) * cell_extent > -heap[0][0]:
            break
        for cell in grid.ring_around(home, radius):
            bucket = index.bucket(cell)
            if bucket is None:
                continue
            for oid in bucket.objects:
                if oid in seen or (exclude and oid in exclude):
                    continue
                seen.add(oid)
                distance = objects[oid].location.distance_to(center)
                candidate = (-distance, -oid)
                if len(heap) < k:
                    heapq.heappush(heap, candidate)
                elif candidate > heap[0]:
                    heapq.heapreplace(heap, candidate)
    return sorted((-d, -negated_oid) for d, negated_oid in heap)
