"""Server-side state for objects and queries.

These mirror the paper's entry layouts: an object entry ``(OID, loc, t,
QList)`` where ``QList`` is "the list of the queries that O is
satisfying", and a query entry ``(QID, region, t, OList)`` where
``OList`` is the answer set.  Keeping both directions of the
object/query membership relation makes removals and candidate pruning
O(degree) instead of O(population).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.geometry import Circle, LinearMotion, Point, Rect, Velocity


class QueryKind(enum.Enum):
    """The continuous query types the framework supports."""

    RANGE = "range"
    KNN = "knn"
    PREDICTIVE_RANGE = "predictive"


@dataclass(slots=True)
class ObjectState:
    """One tracked object: current location, motion, reverse answer list."""

    oid: int
    location: Point
    velocity: Velocity
    t: float
    answered: set[int] = field(default_factory=set)

    @property
    def is_predictive(self) -> bool:
        """Predictive objects reported a non-zero velocity vector."""
        return not self.velocity.is_zero()

    def motion(self) -> LinearMotion:
        return LinearMotion(self.location, self.velocity, self.t)


@dataclass(slots=True)
class RangeQueryState:
    """A (possibly moving) rectangular range query."""

    qid: int
    region: Rect
    t: float
    answer: set[int] = field(default_factory=set)

    kind = QueryKind.RANGE


@dataclass(slots=True)
class KnnQueryState:
    """A continuous k-NN query maintained as an adaptive circular range.

    ``radius`` is the distance to the current k-th nearest neighbour
    (the paper's "smallest circular region that contains the k nearest
    objects"); it grows and shrinks as the answer changes.
    """

    qid: int
    center: Point
    k: int
    t: float
    radius: float = 0.0
    answer: set[int] = field(default_factory=set)

    kind = QueryKind.KNN

    def circle(self) -> Circle:
        return Circle(self.center, self.radius)


@dataclass(slots=True)
class PredictiveQueryState:
    """A predictive range query: who will be in ``region`` within ``horizon``
    seconds of the current evaluation time?

    ``next_flip`` is derived scheduling state maintained by the engine's
    cell-batched pipeline: the earliest evaluation time at which some
    candidate object's predicted membership can change *purely because
    the horizon window slid forward* (no report churn).  Until that
    time, a refresh without churn in the query's footprint cells is
    provably a no-op and is skipped.  ``-inf`` means "not yet computed:
    always refresh".
    """

    qid: int
    region: Rect
    horizon: float
    t: float
    answer: set[int] = field(default_factory=set)
    next_flip: float = float("-inf")

    kind = QueryKind.PREDICTIVE_RANGE


QueryState = RangeQueryState | KnnQueryState | PredictiveQueryState
