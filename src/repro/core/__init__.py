"""The paper's contribution: scalable incremental continuous-query processing.

Public surface:

* :class:`IncrementalEngine` — shared execution over one grid, emitting
  positive/negative updates (Section 3.1).
* :class:`LocationAwareServer` / :class:`Client` — the engine wrapped in
  transport, persistence and the out-of-sync commit protocol
  (Section 3.3).
* :class:`Update` / :class:`UpdateBatch`, :func:`diff_answers`,
  :func:`apply_updates` — the incremental answer algebra
  (``evaluate()`` returns the struct-of-arrays batch form).
* Query/object state types and the grid k-NN search used for first-time
  answers and repairs.
"""

from repro.core.updates import (
    Update,
    UpdateBatch,
    UpdateList,
    apply_updates,
    diff_answers,
)
from repro.core.state import (
    KnnQueryState,
    ObjectState,
    PredictiveQueryState,
    QueryKind,
    RangeQueryState,
)
from repro.core.knn import knn_search
from repro.core.engine import DEFAULT_WORLD, IncrementalEngine
from repro.core.commit import CommittedAnswerStore
from repro.core.server import CycleResult, LocationAwareServer
from repro.core.client import Client

__all__ = [
    "Update",
    "UpdateBatch",
    "UpdateList",
    "apply_updates",
    "diff_answers",
    "ObjectState",
    "QueryKind",
    "RangeQueryState",
    "KnnQueryState",
    "PredictiveQueryState",
    "knn_search",
    "IncrementalEngine",
    "DEFAULT_WORLD",
    "CommittedAnswerStore",
    "LocationAwareServer",
    "CycleResult",
    "Client",
]
