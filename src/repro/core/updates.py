"""Positive and negative updates — the engine's only output language.

"A positive update of the form (Q, +A) indicates that object A needs to
be added to the answer set of query Q.  Similarly, a negative update of
the form (Q, -A) indicates that object A is no longer part of the answer
set of query Q."

Two representations carry that language:

* :class:`Update` — one materialised ``(qid, oid, sign)`` triple, the
  element type every consumer ultimately sees.
* :class:`UpdateBatch` — the same stream as three parallel columns
  (struct of arrays).  This is what ``evaluate()`` returns: the hot
  emission paths append plain integers (or whole column slices) and
  never allocate an :class:`Update` per change; iteration materialises
  elements lazily, so code written against ``list[Update]`` — golden
  tests, the oracle, examples — keeps working unchanged, in the same
  order, with the same values.

:class:`UpdateList` is the legacy materialised representation behind
the same emission API — ``emit_mode="materialized"`` engines use it, so
the batch representation's win is measurable against an otherwise
identical pipeline (``benchmarks/bench_columnar.py``).
"""

from __future__ import annotations


class Update:
    """One incremental answer change for query ``qid``.

    ``sign`` is ``+1`` (object entered the answer) or ``-1`` (object
    left it).  A client that applies a batch of updates *in order* to its
    stored answer set ends with the server's answer set.

    Value semantics: two updates are equal (and hash equal) iff their
    ``(qid, oid, sign)`` triples match.  Instances are immutable by
    convention — this is a hand-rolled slots class rather than a frozen
    dataclass because consumers may materialise one per emitted change
    (hundreds of thousands per bulk round), and the frozen-dataclass
    ``object.__setattr__`` path more than triples construction cost on
    the hottest line of every pipeline.
    """

    __slots__ = ("qid", "oid", "sign")

    def __init__(self, qid: int, oid: int, sign: int) -> None:
        if sign != 1 and sign != -1:
            raise ValueError(f"sign must be +1 or -1, got {sign}")
        self.qid = qid
        self.oid = oid
        self.sign = sign

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Update:
            return (
                self.qid == other.qid
                and self.oid == other.oid
                and self.sign == other.sign
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.qid, self.oid, self.sign))

    def __repr__(self) -> str:
        return f"Update(qid={self.qid}, oid={self.oid}, sign={self.sign})"

    @property
    def is_positive(self) -> bool:
        return self.sign == 1

    @classmethod
    def positive(cls, qid: int, oid: int) -> "Update":
        return cls(qid, oid, 1)

    @classmethod
    def negative(cls, qid: int, oid: int) -> "Update":
        return cls(qid, oid, -1)

    def __str__(self) -> str:  # matches the paper's (Q, +A) notation
        sign = "+" if self.sign == 1 else "-"
        return f"(Q{self.qid}, {sign}p{self.oid})"


class UpdateBatch:
    """An update stream as three parallel columns (struct of arrays).

    The emission contract every pipeline writes through:

    * ``push(qid, oid, sign)`` — append one change, integers only;
    * ``extend_columns(qids, oids, signs)`` — append whole column
      slices (the columnar emitter splices classification output in
      C-speed ``list.extend`` calls);
    * ``append(update)`` / ``extend(updates)`` — legacy element-wise
      entry points, decomposed into the columns.

    Reading is sequence-shaped and **lazily materialised**: iteration
    and indexing build :class:`Update` objects on demand, ``==``
    compares element-wise against any list/tuple of updates (so
    ``evaluate(now) == []`` style assertions keep working), and
    :meth:`tuples` exposes the raw triples without materialising
    anything.  FIFO order is the column order — round-tripping through
    :meth:`to_list` and :meth:`from_updates` is the identity (tested
    property).

    Columns are plain Python int lists: appends and slice-extends stay
    in C, and the numpy consumers (server downlink group-by, bulk set
    maintenance) lift them with one ``np.asarray`` when needed.
    """

    __slots__ = ("qids", "oids", "signs")

    def __init__(self, qids=None, oids=None, signs=None) -> None:
        self.qids: list[int] = [] if qids is None else list(qids)
        self.oids: list[int] = [] if oids is None else list(oids)
        self.signs: list[int] = [] if signs is None else list(signs)
        if not (len(self.qids) == len(self.oids) == len(self.signs)):
            raise ValueError(
                "column lengths differ: "
                f"{len(self.qids)}/{len(self.oids)}/{len(self.signs)}"
            )

    @classmethod
    def from_updates(cls, updates) -> "UpdateBatch":
        """Rebuild a batch from any iterable of updates (order kept)."""
        batch = cls()
        batch.extend(updates)
        return batch

    # ------------------------------------------------------------------
    # Emission API
    # ------------------------------------------------------------------

    def push(self, qid: int, oid: int, sign: int) -> None:
        """Append one change without materialising an :class:`Update`."""
        self.qids.append(qid)
        self.oids.append(oid)
        self.signs.append(sign)

    def extend_columns(self, qids, oids, signs) -> None:
        """Append aligned column slices (lists or any int sequences)."""
        self.qids.extend(qids)
        self.oids.extend(oids)
        self.signs.extend(signs)

    def append(self, update: Update) -> None:
        self.qids.append(update.qid)
        self.oids.append(update.oid)
        self.signs.append(update.sign)

    def extend(self, updates) -> None:
        if isinstance(updates, UpdateBatch):
            self.extend_columns(updates.qids, updates.oids, updates.signs)
            return
        for update in updates:
            self.qids.append(update.qid)
            self.oids.append(update.oid)
            self.signs.append(update.sign)

    # ------------------------------------------------------------------
    # Sequence surface (lazy materialisation)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.qids)

    def __iter__(self):
        return map(Update, self.qids, self.oids, self.signs)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return UpdateBatch(
                self.qids[index], self.oids[index], self.signs[index]
            )
        return Update(self.qids[index], self.oids[index], self.signs[index])

    def __eq__(self, other: object) -> bool:
        if isinstance(other, UpdateBatch):
            return (
                self.qids == other.qids
                and self.oids == other.oids
                and self.signs == other.signs
            )
        if isinstance(other, (list, tuple)):
            if len(other) != len(self.qids):
                return False
            return all(mine == theirs for mine, theirs in zip(self, other))
        return NotImplemented

    def __repr__(self) -> str:
        return repr(list(self))

    def tuples(self):
        """Iterate the raw ``(qid, oid, sign)`` triples, allocation-free."""
        return zip(self.qids, self.oids, self.signs)

    def to_list(self) -> list[Update]:
        """Materialise the whole stream as ``list[Update]``."""
        return list(map(Update, self.qids, self.oids, self.signs))


class UpdateList(list):
    """``list[Update]`` behind the :class:`UpdateBatch` emission API.

    The pre-columnar representation, retained as the measurement
    baseline: an ``emit_mode="materialized"`` engine emits through the
    exact same ``push``/``extend_columns`` call sites but pays the
    per-element :class:`Update` construction the batch avoids.
    """

    def push(self, qid: int, oid: int, sign: int) -> None:
        self.append(Update(qid, oid, sign))

    def extend_columns(self, qids, oids, signs) -> None:
        self.extend(map(Update, qids, oids, signs))

    def tuples(self):
        return ((u.qid, u.oid, u.sign) for u in self)


def diff_answers(
    qid: int, old: set[int], new: set[int], into: UpdateBatch | None = None
) -> "list[Update] | UpdateBatch":
    """The update stream turning answer ``old`` into answer ``new``.

    Negative updates come first (deterministically sorted), then
    positives — the order the out-of-sync recovery path sends them in.
    Pass ``into`` to append the delta onto an existing
    :class:`UpdateBatch` (returned) instead of materialising a list.
    """
    if into is not None:
        for oid in sorted(old - new):
            into.push(qid, oid, -1)
        for oid in sorted(new - old):
            into.push(qid, oid, 1)
        return into
    negatives = [Update.negative(qid, oid) for oid in sorted(old - new)]
    positives = [Update.positive(qid, oid) for oid in sorted(new - old)]
    return negatives + positives


def apply_updates(answer: set[int], updates) -> set[int]:
    """Apply a batch of updates (any queries mixed) to one answer set.

    The caller filters to a single query's updates; this helper is the
    client-side application rule and the test oracle for consistency.
    Accepts a ``list[Update]`` or an :class:`UpdateBatch` (applied
    column-wise, no element materialisation).
    """
    result = set(answer)
    if isinstance(updates, UpdateBatch):
        for oid, sign in zip(updates.oids, updates.signs):
            if sign == 1:
                result.add(oid)
            else:
                result.discard(oid)
        return result
    for update in updates:
        if update.is_positive:
            result.add(update.oid)
        else:
            result.discard(update.oid)
    return result
