"""Positive and negative updates — the engine's only output language.

"A positive update of the form (Q, +A) indicates that object A needs to
be added to the answer set of query Q.  Similarly, a negative update of
the form (Q, -A) indicates that object A is no longer part of the answer
set of query Q."
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Update:
    """One incremental answer change for query ``qid``.

    ``sign`` is ``+1`` (object entered the answer) or ``-1`` (object
    left it).  A client that applies a batch of updates *in order* to its
    stored answer set ends with the server's answer set.
    """

    qid: int
    oid: int
    sign: int

    def __post_init__(self) -> None:
        if self.sign not in (1, -1):
            raise ValueError(f"sign must be +1 or -1, got {self.sign}")

    @property
    def is_positive(self) -> bool:
        return self.sign == 1

    @classmethod
    def positive(cls, qid: int, oid: int) -> "Update":
        return cls(qid, oid, 1)

    @classmethod
    def negative(cls, qid: int, oid: int) -> "Update":
        return cls(qid, oid, -1)

    def __str__(self) -> str:  # matches the paper's (Q, +A) notation
        sign = "+" if self.sign == 1 else "-"
        return f"(Q{self.qid}, {sign}p{self.oid})"


def diff_answers(
    qid: int, old: set[int], new: set[int]
) -> list[Update]:
    """The update stream turning answer ``old`` into answer ``new``.

    Negative updates come first (deterministically sorted), then
    positives — the order the out-of-sync recovery path sends them in.
    """
    negatives = [Update.negative(qid, oid) for oid in sorted(old - new)]
    positives = [Update.positive(qid, oid) for oid in sorted(new - old)]
    return negatives + positives


def apply_updates(answer: set[int], updates: list[Update]) -> set[int]:
    """Apply a batch of updates (any queries mixed) to one answer set.

    The caller filters to a single query's updates; this helper is the
    client-side application rule and the test oracle for consistency.
    """
    result = set(answer)
    for update in updates:
        if update.is_positive:
            result.add(update.oid)
        else:
            result.discard(update.oid)
    return result
