"""Positive and negative updates — the engine's only output language.

"A positive update of the form (Q, +A) indicates that object A needs to
be added to the answer set of query Q.  Similarly, a negative update of
the form (Q, -A) indicates that object A is no longer part of the answer
set of query Q."
"""

from __future__ import annotations


class Update:
    """One incremental answer change for query ``qid``.

    ``sign`` is ``+1`` (object entered the answer) or ``-1`` (object
    left it).  A client that applies a batch of updates *in order* to its
    stored answer set ends with the server's answer set.

    Value semantics: two updates are equal (and hash equal) iff their
    ``(qid, oid, sign)`` triples match.  Instances are immutable by
    convention — this is a hand-rolled slots class rather than a frozen
    dataclass because the engine constructs one per emitted change
    (hundreds of thousands per bulk round), and the frozen-dataclass
    ``object.__setattr__`` path more than triples construction cost on
    the hottest line of every pipeline.
    """

    __slots__ = ("qid", "oid", "sign")

    def __init__(self, qid: int, oid: int, sign: int) -> None:
        if sign != 1 and sign != -1:
            raise ValueError(f"sign must be +1 or -1, got {sign}")
        self.qid = qid
        self.oid = oid
        self.sign = sign

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Update:
            return (
                self.qid == other.qid
                and self.oid == other.oid
                and self.sign == other.sign
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.qid, self.oid, self.sign))

    def __repr__(self) -> str:
        return f"Update(qid={self.qid}, oid={self.oid}, sign={self.sign})"

    @property
    def is_positive(self) -> bool:
        return self.sign == 1

    @classmethod
    def positive(cls, qid: int, oid: int) -> "Update":
        return cls(qid, oid, 1)

    @classmethod
    def negative(cls, qid: int, oid: int) -> "Update":
        return cls(qid, oid, -1)

    def __str__(self) -> str:  # matches the paper's (Q, +A) notation
        sign = "+" if self.sign == 1 else "-"
        return f"(Q{self.qid}, {sign}p{self.oid})"


def diff_answers(
    qid: int, old: set[int], new: set[int]
) -> list[Update]:
    """The update stream turning answer ``old`` into answer ``new``.

    Negative updates come first (deterministically sorted), then
    positives — the order the out-of-sync recovery path sends them in.
    """
    negatives = [Update.negative(qid, oid) for oid in sorted(old - new)]
    positives = [Update.positive(qid, oid) for oid in sorted(new - old)]
    return negatives + positives


def apply_updates(answer: set[int], updates: list[Update]) -> set[int]:
    """Apply a batch of updates (any queries mixed) to one answer set.

    The caller filters to a single query's updates; this helper is the
    client-side application rule and the test oracle for consistency.
    """
    result = set(answer)
    for update in updates:
        if update.is_positive:
            result.add(update.oid)
        else:
            result.discard(update.oid)
    return result
