"""Engine checkpointing through the storage manager.

The paper's system plan: "we use a storage manager that is based on
Shore to store information and access structures for moving objects and
moving queries."  This module is that path: the engine's object and
query tables are written as fixed-width records into heap files, and a
restart reconstructs a fully equivalent engine from them — answer sets
and grid placement are *derived* state, re-materialised by replaying the
records through the normal registration/report path and evaluating once.

Usage::

    manifest = save_engine(engine, pool)
    pool.flush_all()                 # make it durable
    ...
    restored = restore_engine(manifest, pool)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import IncrementalEngine
from repro.core.state import QueryKind
from repro.geometry import Rect
from repro.storage.bufferpool import BufferPool
from repro.storage.heapfile import HeapFile
from repro.storage.records import LocationRecord, QueryRecord


@dataclass(frozen=True, slots=True)
class CheckpointManifest:
    """Everything needed to reopen a checkpoint: engine parameters plus
    the page ids of the two record files.  Small enough to keep in a
    catalog or sidecar file."""

    world: Rect
    grid_size: int
    prediction_horizon: float
    now: float
    object_pages: tuple[int, ...] = field(default_factory=tuple)
    query_pages: tuple[int, ...] = field(default_factory=tuple)


def save_engine(engine: IncrementalEngine, pool: BufferPool) -> CheckpointManifest:
    """Write the engine's durable state into fresh heap files."""
    object_file = HeapFile(pool)
    for state in engine.objects.values():
        object_file.insert(
            LocationRecord(
                state.oid, state.location, state.velocity, state.t
            ).pack()
        )

    query_file = HeapFile(pool)
    for query in engine.queries.values():
        if query.kind is QueryKind.KNN:
            anchor = Rect(
                query.center.x, query.center.y, query.center.x, query.center.y
            )
            record = QueryRecord(query.qid, "knn", anchor, query.t, k=query.k)
        elif query.kind is QueryKind.PREDICTIVE_RANGE:
            record = QueryRecord(
                query.qid, "predictive", query.region, query.t,
                horizon=query.horizon,
            )
        else:
            record = QueryRecord(query.qid, "range", query.region, query.t)
        query_file.insert(record.pack())

    return CheckpointManifest(
        world=engine.grid.world,
        grid_size=engine.grid.n,
        prediction_horizon=engine.prediction_horizon,
        now=engine.now,
        object_pages=tuple(object_file.page_ids),
        query_pages=tuple(query_file.page_ids),
    )


def restore_engine(
    manifest: CheckpointManifest, pool: BufferPool
) -> IncrementalEngine:
    """Rebuild an engine equivalent to the one that was saved.

    Equivalent means: same objects (location, velocity, timestamp), same
    queries, and — after the single evaluation this function performs —
    identical answer sets (a tested property).  The update stream of
    that bootstrap evaluation is discarded: clients are expected to
    resynchronise through the out-of-sync wakeup protocol, which is
    exactly what a server restart looks like to them.
    """
    engine = IncrementalEngine(
        world=manifest.world,
        grid_size=manifest.grid_size,
        prediction_horizon=manifest.prediction_horizon,
    )

    object_file = HeapFile(pool, page_ids=list(manifest.object_pages))
    for __, payload in object_file.scan():
        record = LocationRecord.unpack(payload)
        engine.report_object(
            record.oid, record.location, record.t, record.velocity
        )

    query_file = HeapFile(pool, page_ids=list(manifest.query_pages))
    for __, payload in query_file.scan():
        record = QueryRecord.unpack(payload)
        if record.kind == "knn":
            engine.register_knn_query(
                record.qid, record.region.center, record.k, record.t
            )
        elif record.kind == "predictive":
            engine.register_predictive_query(
                record.qid, record.region, record.horizon, record.t
            )
        else:
            engine.register_range_query(record.qid, record.region, record.t)

    engine.evaluate(manifest.now)
    return engine
