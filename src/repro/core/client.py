"""Client-side answer mirroring.

A client is a passive device: it holds its queries' answer sets, applies
the update stream the server pushes, and survives outages through the
wakeup protocol.  On reconnection it first *rolls back* each answer to
the last committed state before applying the recovery delta — the
committed answer is the only state both sides agree the client holds
(updates delivered after the last commit but before the outage are on
the client yet unknown-committed to the server; rolling back makes the
server's committed-vs-current diff land on the right base).
"""

from __future__ import annotations

from repro.core.server import LocationAwareServer
from repro.net.messages import Message, UpdateMessage


class Client:
    """A query-owning client mirroring its answers from update messages."""

    def __init__(
        self,
        client_id: int,
        server: LocationAwareServer,
        downlink_budget: int | None = None,
    ):
        """``downlink_budget`` (bytes per evaluation cycle) registers the
        client behind a :class:`~repro.net.ThrottledLink` — the congested
        downstream channel of the recovery-under-throttle scenarios."""
        self.client_id = client_id
        self.server = server
        self.link = server.register_client(client_id, downlink_budget)
        self.answers: dict[int, set[int]] = {}
        self._committed: dict[int, frozenset[int]] = {}

    # ------------------------------------------------------------------
    # Query ownership
    # ------------------------------------------------------------------

    def track_query(self, qid: int) -> None:
        """Start mirroring ``qid`` (call alongside server registration)."""
        self.answers.setdefault(qid, set())
        self._committed.setdefault(qid, frozenset())

    def answer_of(self, qid: int) -> frozenset[int]:
        return frozenset(self.answers[qid])

    # ------------------------------------------------------------------
    # Downstream processing
    # ------------------------------------------------------------------

    def pump(self) -> int:
        """Apply everything waiting on the link; returns messages applied."""
        received = self.link.drain()
        for message in received:
            self._apply(message)
        return len(received)

    def _apply(self, message: Message) -> None:
        if isinstance(message, UpdateMessage):
            answer = self.answers.setdefault(message.qid, set())
            if message.sign == 1:
                answer.add(message.oid)
            else:
                answer.discard(message.oid)

    # ------------------------------------------------------------------
    # Commit / outage protocol
    # ------------------------------------------------------------------

    def send_commit(self, qid: int) -> None:
        """Acknowledge the current answer of a stationary query."""
        self.pump()  # fold in anything already delivered
        self.server.receive_commit(qid)
        self._committed[qid] = frozenset(self.answers[qid])

    def note_uplink_commit(self, qid: int) -> None:
        """Record the implicit commit riding on a moving query's uplink."""
        self._committed[qid] = frozenset(self.answers[qid])

    def disconnect(self) -> None:
        self.link.disconnect()

    def reconnect(self) -> None:
        """Wake up: roll back to committed state, then apply the delta."""
        for qid, committed in self._committed.items():
            self.answers[qid] = set(committed)
        self.server.receive_wakeup(self.client_id)
        self.pump()
        for qid in self.answers:
            self._committed[qid] = frozenset(self.answers[qid])

    @property
    def connected(self) -> bool:
        return self.link.connected
