"""The location-aware server.

Binds the pieces together the way the paper's PLACE server does:

* the :class:`~repro.core.engine.IncrementalEngine` does shared,
  incremental evaluation over the grid;
* :mod:`repro.net` links carry positive/negative update messages to the
  owning clients, with byte accounting (Figure 5's KB axis);
* a :class:`~repro.core.commit.CommittedAnswerStore` plus wakeup
  handling implement out-of-sync recovery (Section 3.3);
* superseded object locations are appended to the storage package's
  :class:`~repro.storage.HistoryRepository` ("the old information
  becomes persistent and is stored in a repository server").

The server never observes link state when sending — updates to a
disconnected client are simply lost, which is exactly why the commit
protocol exists.  Commits happen only on uplink evidence: any message
from a moving query, an explicit commit message from a stationary one,
or the completion of a wakeup resynchronisation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.commit import CommittedAnswerStore
from repro.core.engine import DEFAULT_WORLD, IncrementalEngine
from repro.core.updates import Update
from repro.geometry import Point, Rect, Velocity
from repro.net import (
    ClientLink,
    CommitMessage,
    FullAnswerMessage,
    NetworkStats,
    ObjectReportMessage,
    QueryRegionMessage,
    ThrottledLink,
    UpdateMessage,
    WakeupMessage,
)
from repro.obs import MetricsRegistry
from repro.storage import HistoryRepository, LocationRecord


@dataclass(slots=True)
class CycleResult:
    """What one evaluation cycle produced and shipped."""

    now: float
    updates: list[Update]
    incremental_bytes: int
    complete_bytes: int
    delivered_updates: int = 0
    dropped_updates: int = 0
    answer_objects: int = 0

    @property
    def savings_ratio(self) -> float:
        """Incremental bytes as a fraction of complete-answer bytes."""
        if self.complete_bytes == 0:
            return 0.0
        return self.incremental_bytes / self.complete_bytes


@dataclass(slots=True)
class _QueryBinding:
    """Server-side metadata for one registered query."""

    qid: int
    client_id: int
    moving: bool = False


class LocationAwareServer:
    """Continuous-query service over one incremental engine."""

    def __init__(
        self,
        world: Rect = DEFAULT_WORLD,
        grid_size: int = 64,
        prediction_horizon: float = 60.0,
        history: HistoryRepository | None = None,
        engine: IncrementalEngine | None = None,
        registry: MetricsRegistry | None = None,
        pipeline: str = "cell-batched",
        parallelism: object = None,
    ):
        """``engine`` lets a restarted server adopt a checkpoint-restored
        engine instead of starting empty; bind its queries to clients
        with :meth:`adopt_query`.

        ``pipeline`` / ``parallelism`` configure the constructed
        engine's bulk-evaluation strategy (ignored when ``engine`` is
        supplied): ``pipeline="parallel"`` with ``parallelism=K`` (an
        int, or a :class:`repro.parallel.ParallelConfig`) shards each
        evaluation cycle across K workers.  A server running a parallel
        engine should be :meth:`close`\\ d to release the pool.

        ``registry`` is the telemetry sink for the whole stack; when
        omitted the server shares the engine's registry, so server
        cycle/network series and engine phase/work series export
        together.  The server also shares the engine's tracer: its
        ``cycle`` / ``downlink`` / ``recovery`` spans nest around the
        engine's per-phase spans in one Chrome trace.
        """
        self.engine = (
            engine
            if engine is not None
            else IncrementalEngine(
                world,
                grid_size,
                prediction_horizon,
                pipeline=pipeline,
                parallelism=parallelism,  # type: ignore[arg-type]
            )
        )
        self.registry = registry if registry is not None else self.engine.registry
        self.tracer = self.engine.tracer
        self.commits = CommittedAnswerStore()
        self.stats = NetworkStats(self.registry)
        self.history = history
        self._links: dict[int, ClientLink] = {}
        self._bindings: dict[int, _QueryBinding] = {}
        self._queries_of_client: dict[int, set[int]] = {}
        self._m_cycle_seconds = self.registry.histogram("server_cycle_seconds")
        self._m_updates_delivered = self.registry.counter(
            "server_updates_delivered_total"
        )
        self._m_updates_dropped = self.registry.counter(
            "server_updates_dropped_total"
        )
        self._m_incremental_bytes = self.registry.counter(
            "server_incremental_bytes_total"
        )
        self._m_complete_bytes = self.registry.counter(
            "server_complete_bytes_total"
        )
        self._m_savings_ratio = self.registry.gauge("server_savings_ratio")
        self._m_wakeups = self.registry.counter("server_wakeups_total")
        self._m_recovery_updates = self.registry.counter(
            "server_recovery_updates_total"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release engine-owned resources (the parallel worker pool).

        A no-op for serial pipelines; safe to call repeatedly.
        """
        self.engine.close()

    def __enter__(self) -> "LocationAwareServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Client management
    # ------------------------------------------------------------------

    def register_client(
        self, client_id: int, downlink_budget: int | None = None
    ) -> ClientLink:
        """Register a client; ``downlink_budget`` (bytes per evaluation
        cycle) models a congested downstream channel — updates beyond
        the budget are lost in that cycle."""
        if client_id in self._links:
            raise KeyError(f"client {client_id} already registered")
        if downlink_budget is None:
            link: ClientLink = ClientLink(client_id, self.stats)
        else:
            link = ThrottledLink(client_id, downlink_budget, self.stats)
        self._links[client_id] = link
        self._queries_of_client[client_id] = set()
        return link

    def link_of(self, client_id: int) -> ClientLink:
        return self._links[client_id]

    def queries_of(self, client_id: int) -> frozenset[int]:
        return frozenset(self._queries_of_client[client_id])

    # ------------------------------------------------------------------
    # Uplink: object reports
    # ------------------------------------------------------------------

    def receive_object_report(
        self,
        oid: int,
        location: Point,
        t: float,
        velocity: Velocity = Velocity.ZERO,
    ) -> None:
        """Ingest a location report, persisting the superseded location."""
        self.stats.record_uplink(
            ObjectReportMessage(oid, location, velocity, t)
        )
        if self.history is not None:
            previous = self.engine.objects.get(oid)
            if previous is not None:
                self.history.append(
                    LocationRecord(
                        oid, previous.location, previous.velocity, previous.t
                    )
                )
        self.engine.report_object(oid, location, t, velocity)

    def remove_object(self, oid: int) -> None:
        self.engine.remove_object(oid)

    # ------------------------------------------------------------------
    # Uplink: query registration and movement
    # ------------------------------------------------------------------

    def register_range_query(
        self, client_id: int, qid: int, region: Rect, t: float = 0.0
    ) -> None:
        self.engine.register_range_query(qid, region, t)
        self._bind(qid, client_id)

    def register_knn_query(
        self, client_id: int, qid: int, center: Point, k: int, t: float = 0.0
    ) -> None:
        self.engine.register_knn_query(qid, center, k, t)
        self._bind(qid, client_id)

    def register_predictive_query(
        self, client_id: int, qid: int, region: Rect, horizon: float, t: float = 0.0
    ) -> None:
        self.engine.register_predictive_query(qid, region, horizon, t)
        self._bind(qid, client_id)

    def receive_range_query_move(self, qid: int, region: Rect, t: float) -> None:
        """A moving range query reports its new region.

        Receiving anything from a moving query commits its latest answer
        — the uplink proves the client is connected and has received
        everything sent so far (clients always wake up before resuming
        uplink after an outage).
        """
        self.stats.record_uplink(QueryRegionMessage(qid, region, t))
        self.engine.move_range_query(qid, region, t)
        self._commit_on_uplink(qid)

    def receive_knn_query_move(self, qid: int, center: Point, t: float) -> None:
        self.stats.record_uplink(
            QueryRegionMessage(qid, Rect(center.x, center.y, center.x, center.y), t)
        )
        self.engine.move_knn_query(qid, center, t)
        self._commit_on_uplink(qid)

    def receive_predictive_query_move(
        self, qid: int, region: Rect, t: float
    ) -> None:
        self.stats.record_uplink(QueryRegionMessage(qid, region, t))
        self.engine.move_predictive_query(qid, region, t)
        self._commit_on_uplink(qid)

    def receive_commit(self, qid: int) -> None:
        """Explicit commit from a stationary query's client."""
        self.stats.record_uplink(CommitMessage(qid))
        self._require_binding(qid)
        self.commits.commit(qid, self.engine.answer_of(qid))

    def adopt_query(self, qid: int, client_id: int) -> None:
        """Bind an engine query that already exists (restored from a
        checkpoint) to its owning client."""
        if qid not in self.engine.queries:
            raise KeyError(f"engine has no query {qid}")
        self._bind(qid, client_id)

    def unregister_query(self, qid: int) -> None:
        binding = self._bindings.pop(qid, None)
        if binding is None:
            raise KeyError(f"unknown query {qid}")
        self._queries_of_client[binding.client_id].discard(qid)
        self.commits.forget(qid)
        self.engine.unregister_query(qid)

    # ------------------------------------------------------------------
    # Uplink: wakeup / recovery
    # ------------------------------------------------------------------

    def receive_wakeup(self, client_id: int) -> list[Update]:
        """Resynchronise a reconnecting client (Section 3.3).

        For every query the client owns, diff the current answer against
        the committed one and ship only that delta; the post-recovery
        answer is then committed (the client just proved it is
        listening).  Returns the updates sent, for observability.
        """
        self.stats.record_uplink(WakeupMessage(client_id))
        self._m_wakeups.inc()
        link = self._links[client_id]
        link.reconnect()
        if isinstance(link, ThrottledLink):
            # The recovery response gets a fresh cycle's worth of budget.
            link.new_cycle()
        sent: list[Update] = []
        with self.tracer.span("recovery"):
            for qid in sorted(self._queries_of_client[client_id]):
                current = self.engine.answer_of(qid)
                for update in self.commits.recovery_updates(qid, current):
                    link.deliver(
                        UpdateMessage(update.qid, update.oid, update.sign)
                    )
                    sent.append(update)
                self.commits.commit(qid, current)
        self._m_recovery_updates.inc(len(sent))
        return sent

    def recover_naive(self, client_id: int) -> int:
        """The naive wakeup alternative: retransmit every full answer.

        Returns the bytes sent; used by the recovery ablation benchmark.
        """
        link = self._links[client_id]
        link.reconnect()
        total = 0
        for qid in sorted(self._queries_of_client[client_id]):
            answer = self.engine.answer_of(qid)
            message = FullAnswerMessage(qid, answer)
            link.deliver(message)
            total += message.size_bytes
            self.commits.commit(qid, answer)
        return total

    # ------------------------------------------------------------------
    # Evaluation cycles
    # ------------------------------------------------------------------

    def evaluate_cycle(self, now: float) -> CycleResult:
        """Run one bulk evaluation and ship updates to owners.

        The whole cycle runs inside a ``cycle`` tracer span (nesting
        the engine's phase spans and the ``downlink`` ship span) whose
        latency lands in the ``server_cycle_seconds`` histogram.
        """
        with self.tracer.span("cycle", histogram=self._m_cycle_seconds):
            for link in self._links.values():
                if isinstance(link, ThrottledLink):
                    link.new_cycle()
            updates = self.engine.evaluate(now)
            result = CycleResult(
                now=now,
                updates=updates,
                incremental_bytes=0,
                complete_bytes=self.complete_answer_bytes(),
                answer_objects=sum(
                    len(q.answer) for q in self.engine.queries.values()
                ),
            )
            with self.tracer.span("downlink"):
                for update in updates:
                    binding = self._bindings.get(update.qid)
                    if binding is None:
                        continue  # query was unregistered in this same batch
                    message = UpdateMessage(update.qid, update.oid, update.sign)
                    result.incremental_bytes += message.size_bytes
                    if self._links[binding.client_id].deliver(message):
                        result.delivered_updates += 1
                    else:
                        result.dropped_updates += 1
        self._m_updates_delivered.inc(result.delivered_updates)
        self._m_updates_dropped.inc(result.dropped_updates)
        self._m_incremental_bytes.inc(result.incremental_bytes)
        self._m_complete_bytes.inc(result.complete_bytes)
        self._m_savings_ratio.set(result.savings_ratio)
        return result

    def savings_ratio(self) -> float:
        """Cumulative incremental bytes as a fraction of the complete
        answers a snapshot server would have shipped instead.

        0.0 before the first cycle and over cycles with no registered
        queries (zero complete-answer bytes): an empty denominator
        means "nothing to save yet", never a ``ZeroDivisionError``.
        """
        complete = self._m_complete_bytes.value
        if complete == 0:
            return 0.0
        return self._m_incremental_bytes.value / complete

    def complete_answer_bytes(self) -> int:
        """Bytes a snapshot server would ship: every full answer, every cycle."""
        return sum(
            FullAnswerMessage(qid, frozenset(query.answer)).size_bytes
            for qid, query in self.engine.queries.items()
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _bind(self, qid: int, client_id: int) -> None:
        if client_id not in self._links:
            raise KeyError(f"unknown client {client_id}")
        self._bindings[qid] = _QueryBinding(qid, client_id)
        self._queries_of_client[client_id].add(qid)

    def _commit_on_uplink(self, qid: int) -> None:
        self._require_binding(qid)
        self._bindings[qid].moving = True
        self.commits.commit(qid, self.engine.answer_of(qid))

    def _require_binding(self, qid: int) -> None:
        if qid not in self._bindings:
            raise KeyError(f"unknown query {qid}")
