"""The location-aware server.

Binds the pieces together the way the paper's PLACE server does:

* the :class:`~repro.core.engine.IncrementalEngine` does shared,
  incremental evaluation over the grid;
* :mod:`repro.net` links carry positive/negative update messages to the
  owning clients, with byte accounting (Figure 5's KB axis);
* a :class:`~repro.core.commit.CommittedAnswerStore` plus wakeup
  handling implement out-of-sync recovery (Section 3.3);
* superseded object locations are appended to the storage package's
  :class:`~repro.storage.HistoryRepository` ("the old information
  becomes persistent and is stored in a repository server").

The server never observes link state when sending — updates to a
disconnected client are simply lost, which is exactly why the commit
protocol exists.  Commits happen only on uplink evidence: any message
from a moving query, an explicit commit message from a stationary one,
or the completion of a wakeup resynchronisation.

**Commit invariant (committed ⊆ delivered).**  The committed-answer
repository must never get *ahead* of what a client actually received:
a committed answer the client does not hold poisons every future
recovery diff (the server diffs against a base the client never
reached, so stale members are never retracted).  The server therefore
tracks, per query, the answer state proven delivered — the committed
base plus every update ``link.deliver`` accepted since — and commits
only that.  A throttled or re-dropped recovery update simply leaves
the query behind the live answer; the next wakeup re-sends the missing
delta, and repeated wakeups converge because each one advances the
committed base by whatever did fit.  The
:class:`repro.check.ConsistencyOracle` enforces this invariant under
the :mod:`repro.faults` chaos schedules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.columnar.backend import numpy_or_none
from repro.core.commit import CommittedAnswerStore
from repro.core.engine import DEFAULT_WORLD, IncrementalEngine
from repro.core.updates import Update, UpdateBatch
from repro.geometry import Point, Rect, Velocity
from repro.net import (
    ClientLink,
    CommitMessage,
    FullAnswerMessage,
    KnnMoveMessage,
    NetworkStats,
    ObjectRemovalMessage,
    ObjectReportMessage,
    QueryRegionMessage,
    ThrottledLink,
    UpdateMessage,
    WakeupMessage,
)
from repro.obs import FlightRecorder, MetricsRegistry
from repro.storage import HistoryRepository, LocationRecord


@dataclass(slots=True)
class CycleResult:
    """What one evaluation cycle produced and shipped.

    ``updates`` is whatever stream shape the engine emitted — an
    :class:`~repro.core.updates.UpdateBatch` by default (sequence-
    shaped, lazily materialised) or a ``list[Update]`` under
    ``emit_mode="materialized"``.
    """

    now: float
    updates: "UpdateBatch | list[Update]"
    incremental_bytes: int
    complete_bytes: int
    delivered_updates: int = 0
    dropped_updates: int = 0
    answer_objects: int = 0

    @property
    def savings_ratio(self) -> float:
        """Incremental bytes as a fraction of complete-answer bytes."""
        if self.complete_bytes == 0:
            return 0.0
        return self.incremental_bytes / self.complete_bytes


@dataclass(slots=True)
class _QueryBinding:
    """Server-side metadata for one registered query."""

    qid: int
    client_id: int
    moving: bool = False


class LocationAwareServer:
    """Continuous-query service over one incremental engine."""

    def __init__(
        self,
        world: Rect = DEFAULT_WORLD,
        grid_size: int = 64,
        prediction_horizon: float = 60.0,
        history: HistoryRepository | None = None,
        engine: IncrementalEngine | None = None,
        registry: MetricsRegistry | None = None,
        pipeline: str = "cell-batched",
        parallelism: object = None,
        recorder: FlightRecorder | None = None,
    ):
        """``engine`` lets a restarted server adopt a checkpoint-restored
        engine instead of starting empty; bind its queries to clients
        with :meth:`adopt_query`.

        ``pipeline`` / ``parallelism`` configure the constructed
        engine's bulk-evaluation strategy (ignored when ``engine`` is
        supplied): ``pipeline="parallel"`` with ``parallelism=K`` (an
        int, or a :class:`repro.parallel.ParallelConfig`) shards each
        evaluation cycle across K workers.  A server running a parallel
        engine should be :meth:`close`\\ d to release the pool.

        ``registry`` is the telemetry sink for the whole stack; when
        omitted the server shares the engine's registry, so server
        cycle/network series and engine phase/work series export
        together.  The server also shares the engine's tracer: its
        ``cycle`` / ``downlink`` / ``recovery`` spans nest around the
        engine's per-phase spans in one Chrome trace.

        ``recorder`` arms the black-box flight recorder for the whole
        stack (engine shard events plus server protocol events).  When
        an ``engine`` is supplied, the recorder is installed onto it so
        both layers write into the same ring.
        """
        self.engine = (
            engine
            if engine is not None
            else IncrementalEngine(
                world,
                grid_size,
                prediction_horizon,
                pipeline=pipeline,
                parallelism=parallelism,  # type: ignore[arg-type]
                recorder=recorder,
            )
        )
        if engine is not None and recorder is not None:
            self.engine.recorder = recorder
        self.registry = registry if registry is not None else self.engine.registry
        self.tracer = self.engine.tracer
        # Shared observability plane: staleness attribution and the
        # flight recorder live on the engine, the server reports into
        # them from the delivery/commit side.
        self.freshness = self.engine.freshness
        self.recorder = self.engine.recorder
        self.commits = CommittedAnswerStore()
        self.stats = NetworkStats(self.registry)
        self.history = history
        self._links: dict[int, ClientLink] = {}
        self._bindings: dict[int, _QueryBinding] = {}
        self._queries_of_client: dict[int, set[int]] = {}
        # Per-query answer state proven delivered to the owning client:
        # the committed base plus every update deliver() accepted since.
        # This — never the live engine answer — is what commits record.
        self._delivered_answers: dict[int, set[int]] = {}
        # Fault-injection gate for uplink traffic: ``gate(kind) -> bool``
        # where False defers the uplink call to the start of the next
        # evaluation cycle (a slow/congested uplink path).  ``None``
        # means every uplink is processed immediately.
        self.uplink_gate = None
        self._delayed_uplinks: list[tuple[object, tuple]] = []
        # Protocol observers (the consistency oracle): duck-typed
        # objects with on_wakeup_begin/on_wakeup_end/on_commit.
        self._observers: list[object] = []
        self._m_cycle_seconds = self.registry.histogram("server_cycle_seconds")
        self._m_updates_delivered = self.registry.counter(
            "server_updates_delivered_total"
        )
        self._m_updates_dropped = self.registry.counter(
            "server_updates_dropped_total"
        )
        self._m_incremental_bytes = self.registry.counter(
            "server_incremental_bytes_total"
        )
        self._m_complete_bytes = self.registry.counter(
            "server_complete_bytes_total"
        )
        self._m_savings_ratio = self.registry.gauge("server_savings_ratio")
        self._m_wakeups = self.registry.counter("server_wakeups_total")
        self._m_recovery_updates = self.registry.counter(
            "server_recovery_updates_total"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release engine-owned resources (the parallel worker pool).

        A no-op for serial pipelines; safe to call repeatedly.
        """
        self.engine.close()

    def __enter__(self) -> "LocationAwareServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Protocol observers and fault hooks
    # ------------------------------------------------------------------

    def add_observer(self, observer: object) -> None:
        """Subscribe a protocol observer (e.g. the consistency oracle).

        Observers receive ``on_wakeup_begin(client_id)`` /
        ``on_wakeup_end(client_id)`` around each wakeup
        resynchronisation and ``on_commit(qid)`` after every commit, so
        an external checker can mirror the client-side protocol state
        without being in the delivery path.
        """
        self._observers.append(observer)

    def _notify(self, event: str, ident: int) -> None:
        for observer in self._observers:
            getattr(observer, event)(ident)

    def _gate(self, kind: str, method, args: tuple) -> bool:
        """Apply the uplink fault gate; True means "process now"."""
        if self.uplink_gate is None or self.uplink_gate(kind):
            return True
        self._delayed_uplinks.append((method, args))
        return False

    def _replay_delayed_uplinks(self) -> None:
        """Deliver uplinks a fault schedule delayed into this cycle.

        Replays bypass the gate — a delayed message arrives at the next
        cycle boundary, it is not re-rolled into oblivion.
        """
        if not self._delayed_uplinks:
            return
        pending, self._delayed_uplinks = self._delayed_uplinks, []
        gate, self.uplink_gate = self.uplink_gate, None
        try:
            for method, args in pending:
                method(*args)
        finally:
            self.uplink_gate = gate

    # ------------------------------------------------------------------
    # Client management
    # ------------------------------------------------------------------

    def register_client(
        self, client_id: int, downlink_budget: int | None = None
    ) -> ClientLink:
        """Register a client; ``downlink_budget`` (bytes per evaluation
        cycle) models a congested downstream channel — updates beyond
        the budget are lost in that cycle."""
        if client_id in self._links:
            raise KeyError(f"client {client_id} already registered")
        if downlink_budget is None:
            link: ClientLink = ClientLink(client_id, self.stats)
        else:
            link = ThrottledLink(client_id, downlink_budget, self.stats)
        self._links[client_id] = link
        self._queries_of_client[client_id] = set()
        return link

    def link_of(self, client_id: int) -> ClientLink:
        return self._links[client_id]

    def client_ids(self) -> list[int]:
        return sorted(self._links)

    def queries_of(self, client_id: int) -> frozenset[int]:
        return frozenset(self._queries_of_client[client_id])

    def client_of(self, qid: int) -> int:
        """The client that owns query ``qid``."""
        self._require_binding(qid)
        return self._bindings[qid].client_id

    # ------------------------------------------------------------------
    # Uplink: object reports
    # ------------------------------------------------------------------

    def receive_object_report(
        self,
        oid: int,
        location: Point,
        t: float,
        velocity: Velocity = Velocity.ZERO,
    ) -> None:
        """Ingest a location report, persisting the superseded location."""
        if not self._gate(
            "object_report",
            self.receive_object_report,
            (oid, location, t, velocity),
        ):
            return
        self.stats.record_uplink(
            ObjectReportMessage(oid, location, velocity, t)
        )
        self.recorder.record("uplink_report", oid=oid, t=t)
        if self.history is not None:
            previous = self.engine.objects.get(oid)
            if previous is not None:
                self.history.append(
                    LocationRecord(
                        oid, previous.location, previous.velocity, previous.t
                    )
                )
        self.engine.report_object(oid, location, t, velocity)

    def remove_object(self, oid: int) -> None:
        """An object leaves the system — an uplink message like any
        report, and accounted as one (8 identifier bytes)."""
        if not self._gate("object_removal", self.remove_object, (oid,)):
            return
        self.stats.record_uplink(ObjectRemovalMessage(oid))
        self.recorder.record("uplink_removal", oid=oid)
        self.engine.remove_object(oid)

    # ------------------------------------------------------------------
    # Uplink: query registration and movement
    # ------------------------------------------------------------------

    def register_range_query(
        self, client_id: int, qid: int, region: Rect, t: float = 0.0
    ) -> None:
        self.engine.register_range_query(qid, region, t)
        self._bind(qid, client_id)

    def register_knn_query(
        self, client_id: int, qid: int, center: Point, k: int, t: float = 0.0
    ) -> None:
        self.engine.register_knn_query(qid, center, k, t)
        self._bind(qid, client_id)

    def register_predictive_query(
        self, client_id: int, qid: int, region: Rect, horizon: float, t: float = 0.0
    ) -> None:
        self.engine.register_predictive_query(qid, region, horizon, t)
        self._bind(qid, client_id)

    def receive_range_query_move(self, qid: int, region: Rect, t: float) -> None:
        """A moving range query reports its new region.

        Receiving anything from a moving query commits its latest answer
        — the uplink proves the client is connected and has received
        everything sent so far (clients always wake up before resuming
        uplink after an outage).
        """
        if not self._gate(
            "query_move", self.receive_range_query_move, (qid, region, t)
        ):
            return
        self.stats.record_uplink(QueryRegionMessage(qid, region, t))
        self.recorder.record("uplink_move", qid=qid, query="range", t=t)
        self.engine.move_range_query(qid, region, t)
        self._commit_on_uplink(qid)

    def receive_knn_query_move(self, qid: int, center: Point, t: float) -> None:
        """A moving k-NN query reports its new center (a
        :class:`~repro.net.KnnMoveMessage` — 32 bytes on the wire, not
        a degenerate zero-area rectangle shoehorned into the 48-byte
        range-move encoding)."""
        if not self._gate(
            "query_move", self.receive_knn_query_move, (qid, center, t)
        ):
            return
        self.stats.record_uplink(KnnMoveMessage(qid, center, t))
        self.recorder.record("uplink_move", qid=qid, query="knn", t=t)
        self.engine.move_knn_query(qid, center, t)
        self._commit_on_uplink(qid)

    def receive_predictive_query_move(
        self, qid: int, region: Rect, t: float
    ) -> None:
        if not self._gate(
            "query_move", self.receive_predictive_query_move, (qid, region, t)
        ):
            return
        self.stats.record_uplink(QueryRegionMessage(qid, region, t))
        self.recorder.record("uplink_move", qid=qid, query="predictive", t=t)
        self.engine.move_predictive_query(qid, region, t)
        self._commit_on_uplink(qid)

    def receive_commit(self, qid: int) -> None:
        """Explicit commit from a stationary query's client.

        Commits the *delivered* answer state, not the live engine
        answer: the client is acknowledging what it holds, and what it
        holds is exactly the updates the link accepted.  The two only
        differ when downlink messages were dropped (throttling, an
        unnoticed outage) — precisely when committing the live answer
        would violate the commit invariant.
        """
        if not self._gate("commit", self.receive_commit, (qid,)):
            return
        self.stats.record_uplink(CommitMessage(qid))
        self._require_binding(qid)
        self.commits.commit(qid, frozenset(self._delivered_answers[qid]))
        self.freshness.observe_committed(qid)
        self.recorder.record("commit", qid=qid, via="explicit")
        self._notify("on_commit", qid)

    def adopt_query(self, qid: int, client_id: int) -> None:
        """Bind an engine query that already exists (restored from a
        checkpoint) to its owning client."""
        if qid not in self.engine.queries:
            raise KeyError(f"engine has no query {qid}")
        self._bind(qid, client_id)

    def unregister_query(self, qid: int) -> None:
        binding = self._bindings.pop(qid, None)
        if binding is None:
            raise KeyError(f"unknown query {qid}")
        self._queries_of_client[binding.client_id].discard(qid)
        self._delivered_answers.pop(qid, None)
        self.commits.forget(qid)
        self.engine.unregister_query(qid)

    # ------------------------------------------------------------------
    # Uplink: wakeup / recovery
    # ------------------------------------------------------------------

    def receive_wakeup(self, client_id: int) -> UpdateBatch:
        """Resynchronise a reconnecting client (Section 3.3).

        For every query the client owns, diff the current answer against
        the committed one and ship only that delta.  Only the answer
        state *actually delivered* is then committed: each recovery
        update the link accepts advances the committed base, while a
        throttled or re-dropped one leaves its object out of the commit
        — the query stays partially committed and the next wakeup
        re-sends exactly the missing delta.  (Committing the full
        current answer here regardless of delivery would desync a
        congested client forever: the server would diff future
        recoveries against a base the client never reached.)

        Returns the updates delivered (an
        :class:`~repro.core.updates.UpdateBatch`), for observability.
        """
        self.stats.record_uplink(WakeupMessage(client_id))
        self._m_wakeups.inc()
        self.recorder.record("wakeup_begin", client=client_id)
        link = self._links[client_id]
        link.reconnect()
        if isinstance(link, ThrottledLink):
            # The recovery response gets a fresh cycle's worth of budget.
            link.new_cycle()
        self._notify("on_wakeup_begin", client_id)
        freshness = self.freshness
        sent = UpdateBatch()
        with self.tracer.span("recovery"):
            for qid in sorted(self._queries_of_client[client_id]):
                current = self.engine.answer_of(qid)
                # The client rolled back to the committed answer; every
                # delivered update moves this base toward `current`.
                reached = set(self.commits.committed_answer(qid))
                delta = self.commits.recovery_updates(
                    qid, current, into=UpdateBatch()
                )
                for uqid, uoid, usign in delta.tuples():
                    if link.deliver(UpdateMessage(uqid, uoid, usign)):
                        if usign == 1:
                            reached.add(uoid)
                        else:
                            reached.discard(uoid)
                        sent.push(uqid, uoid, usign)
                        freshness.observe_delivered(uqid, uoid, usign)
                    else:
                        freshness.observe_undelivered(uqid, uoid, usign)
                self._delivered_answers[qid] = reached
                self.commits.commit(qid, frozenset(reached))
                freshness.observe_committed(qid)
                self.recorder.record("commit", qid=qid, via="wakeup")
        self._notify("on_wakeup_end", client_id)
        self._m_recovery_updates.inc(len(sent))
        self.recorder.record(
            "wakeup_end", client=client_id, recovered=len(sent)
        )
        return sent

    def recover_naive(self, client_id: int) -> int:
        """The naive wakeup alternative: retransmit every full answer.

        Returns the bytes delivered; used by the recovery ablation
        benchmark.  Mirrors :meth:`receive_wakeup`'s accounting — the
        wakeup uplink is recorded in :class:`NetworkStats`, a throttled
        link gets a fresh cycle budget, the flight recorder sees
        ``wakeup_begin``/``wakeup_end``, and every full-answer member
        is attributed in the freshness tracker — so the ablation
        compares recovery strategies, not bookkeeping asymmetries.  A
        full answer the link rejects leaves the query uncommitted; the
        next recovery attempt retries it.
        """
        self.stats.record_uplink(WakeupMessage(client_id))
        self._m_wakeups.inc()
        self.recorder.record("wakeup_begin", client=client_id, via="naive")
        link = self._links[client_id]
        link.reconnect()
        if isinstance(link, ThrottledLink):
            link.new_cycle()
        self._notify("on_wakeup_begin", client_id)
        freshness = self.freshness
        total = 0
        recovered = 0
        for qid in sorted(self._queries_of_client[client_id]):
            answer = self.engine.answer_of(qid)
            message = FullAnswerMessage(qid, answer)
            if link.deliver(message):
                total += message.size_bytes
                recovered += 1
                # A delivered full answer lands every member at once;
                # attribute each one exactly as the incremental path
                # attributes its recovery updates.
                for oid in answer:
                    freshness.observe_delivered(qid, oid, 1)
                self._delivered_answers[qid] = set(answer)
                self.commits.commit(qid, answer)
                freshness.observe_committed(qid)
                self.recorder.record("commit", qid=qid, via="naive_recovery")
            else:
                for oid in answer:
                    freshness.observe_undelivered(qid, oid, 1)
        self._notify("on_wakeup_end", client_id)
        self.recorder.record(
            "wakeup_end", client=client_id, via="naive", recovered=recovered
        )
        return total

    # ------------------------------------------------------------------
    # Evaluation cycles
    # ------------------------------------------------------------------

    def evaluate_cycle(self, now: float) -> CycleResult:
        """Run one bulk evaluation and ship updates to owners.

        The whole cycle runs inside a ``cycle`` tracer span (nesting
        the engine's phase spans and the ``downlink`` ship span) whose
        latency lands in the ``server_cycle_seconds`` histogram.
        """
        self._replay_delayed_uplinks()
        with self.tracer.span("cycle", histogram=self._m_cycle_seconds):
            for link in self._links.values():
                if isinstance(link, ThrottledLink):
                    link.new_cycle()
            updates = self.engine.evaluate(now)
            result = CycleResult(
                now=now,
                updates=updates,
                incremental_bytes=0,
                complete_bytes=self.complete_answer_bytes(),
                answer_objects=sum(
                    len(q.answer) for q in self.engine.queries.values()
                ),
            )
            freshness = self.freshness
            recorder = self.recorder
            with self.tracer.span("downlink"):
                np = numpy_or_none()
                if (
                    np is not None
                    and getattr(updates, "qids", None) is not None
                    and len(updates) > 1
                ):
                    self._ship_grouped(
                        np, updates, result, freshness, recorder
                    )
                else:
                    for uqid, uoid, usign in self._stream_tuples(updates):
                        binding = self._bindings.get(uqid)
                        if binding is None:
                            # Query was unregistered in this same batch.
                            continue
                        self._ship_one(
                            self._links[binding.client_id],
                            uqid,
                            uoid,
                            usign,
                            result,
                            freshness,
                            recorder,
                        )
        self._m_updates_delivered.inc(result.delivered_updates)
        self._m_updates_dropped.inc(result.dropped_updates)
        self._m_incremental_bytes.inc(result.incremental_bytes)
        self._m_complete_bytes.inc(result.complete_bytes)
        self._m_savings_ratio.set(result.savings_ratio)
        return result

    @staticmethod
    def _stream_tuples(updates):
        """``(qid, oid, sign)`` triples of any stream shape."""
        tuples = getattr(updates, "tuples", None)
        if tuples is not None:
            return tuples()
        return ((u.qid, u.oid, u.sign) for u in updates)

    def _ship_one(
        self, link, qid: int, oid: int, sign: int, result, freshness, recorder
    ) -> None:
        """Deliver one update over ``link`` with full accounting."""
        message = UpdateMessage(qid, oid, sign)
        result.incremental_bytes += message.size_bytes
        if link.deliver(message):
            result.delivered_updates += 1
            # Advance the proven-delivered view so the next
            # uplink-triggered commit records what the client
            # actually holds.
            delivered = self._delivered_answers[qid]
            if sign == 1:
                delivered.add(oid)
            else:
                delivered.discard(oid)
            freshness.observe_delivered(qid, oid, sign)
            recorder.record(
                "downlink", qid=qid, oid=oid, sign=sign, ok=True
            )
        else:
            result.dropped_updates += 1
            freshness.observe_undelivered(qid, oid, sign)
            recorder.record(
                "downlink", qid=qid, oid=oid, sign=sign, ok=False
            )

    def _ship_grouped(self, np, updates, result, freshness, recorder) -> None:
        """Downlink shipping grouped by owning client (numpy path).

        One ``np.unique`` resolves each distinct qid's binding once and
        one **stable** argsort groups the batch by client, so the
        per-update Python work drops to the delivery itself with the
        link lookup hoisted per group.  Stability preserves stream
        order within each client group — links are independent FIFO
        channels with per-link cycle budgets, so per-link delivery
        outcomes (and the freshness/commit bookkeeping derived from
        them) are identical to the scalar loop's.
        """
        qid_arr = np.asarray(updates.qids, dtype=np.int64)
        uniq, inverse = np.unique(qid_arr, return_inverse=True)
        bindings = self._bindings
        client_of_uniq = np.fromiter(
            (
                -1 if (b := bindings.get(qid)) is None else b.client_id
                for qid in uniq.tolist()
            ),
            dtype=np.int64,
            count=len(uniq),
        )
        clients = client_of_uniq[inverse]
        order = np.argsort(clients, kind="stable")
        sorted_clients = clients[order]
        cuts = (
            np.flatnonzero(sorted_clients[1:] != sorted_clients[:-1]) + 1
        ).tolist()
        starts = [0, *cuts]
        stops = [*cuts, len(order)]
        group_clients = sorted_clients[starts].tolist()
        order_list = order.tolist()
        qids = updates.qids
        oids = updates.oids
        signs = updates.signs
        links = self._links
        ship_one = self._ship_one
        for cid, s, e in zip(group_clients, starts, stops):
            if cid < 0:
                continue  # queries unregistered in this same batch
            link = links[cid]
            for idx in order_list[s:e]:
                ship_one(
                    link,
                    qids[idx],
                    oids[idx],
                    signs[idx],
                    result,
                    freshness,
                    recorder,
                )

    def savings_ratio(self) -> float:
        """Cumulative incremental bytes as a fraction of the complete
        answers a snapshot server would have shipped instead.

        0.0 before the first cycle and over cycles with no registered
        queries (zero complete-answer bytes): an empty denominator
        means "nothing to save yet", never a ``ZeroDivisionError``.
        """
        complete = self._m_complete_bytes.value
        if complete == 0:
            return 0.0
        return self._m_incremental_bytes.value / complete

    def freshness_vs_savings(self) -> dict[str, object]:
        """The paper's bandwidth savings paired with the staleness its
        laziness costs — one JSON-ready snapshot.

        The incremental protocol's whole case is this trade: Figure 5's
        byte savings are only meaningful alongside how stale the
        committed answers are allowed to get (throttled clients sit at
        the tail of the commit-stage distribution).
        """
        return {
            "savings_ratio": self.savings_ratio(),
            "incremental_bytes": int(self._m_incremental_bytes.value),
            "complete_bytes": int(self._m_complete_bytes.value),
            "staleness": self.freshness.snapshot(),
        }

    def complete_answer_bytes(self) -> int:
        """Bytes a snapshot server would ship: every full answer, every cycle."""
        return sum(
            FullAnswerMessage(qid, frozenset(query.answer)).size_bytes
            for qid, query in self.engine.queries.items()
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _bind(self, qid: int, client_id: int) -> None:
        if client_id not in self._links:
            raise KeyError(f"unknown client {client_id}")
        self._bindings[qid] = _QueryBinding(qid, client_id)
        self._queries_of_client[client_id].add(qid)
        # A checkpoint-adopted query starts from its committed answer
        # (the client held it before the restart); a fresh one from ∅.
        self._delivered_answers[qid] = set(self.commits.committed_answer(qid))

    def _commit_on_uplink(self, qid: int) -> None:
        self._require_binding(qid)
        self._bindings[qid].moving = True
        self.commits.commit(qid, frozenset(self._delivered_answers[qid]))
        self.freshness.observe_committed(qid)
        self.recorder.record("commit", qid=qid, via="uplink")
        self._notify("on_commit", qid)

    def _require_binding(self, qid: int) -> None:
        if qid not in self._bindings:
            raise KeyError(f"unknown query {qid}")
