"""The differential consistency oracle.

The oracle's mirror clients replicate the client-side protocol exactly
as :class:`repro.core.client.Client` implements it — apply every
delivered update in wire order, roll back to the committed answer on
wakeup, commit on the server's commit notifications — but they feed off
the link's delivery observer instead of draining the inbox, so a real
client (or no client at all) can coexist with the oracle on the same
link.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.server import LocationAwareServer
from repro.core.state import QueryKind
from repro.core.updates import Update, apply_updates
from repro.net.messages import FullAnswerMessage, Message, UpdateMessage


@dataclass(frozen=True, slots=True)
class Divergence:
    """One detected consistency violation.

    ``kind`` is the check that failed (``replay`` / ``snapshot`` /
    ``commit`` / ``desync``); ``oids`` is the symmetric difference
    between the two answer derivations, so the report names exactly the
    objects the two sides disagree about.
    """

    kind: str
    cycle: int
    qid: int
    client_id: int
    oids: tuple[int, ...]
    detail: str

    def __str__(self) -> str:
        return (
            f"[{self.kind}] cycle={self.cycle} qid={self.qid} "
            f"client={self.client_id} oids={list(self.oids)}: {self.detail}"
        )


@dataclass(slots=True)
class _MirrorClient:
    """Protocol-faithful replica of one client's answer state."""

    answers: dict[int, set[int]] = field(default_factory=dict)
    committed: dict[int, frozenset[int]] = field(default_factory=dict)
    #: True once any downlink message was lost since the last completed
    #: recovery — the client may legitimately differ from the engine.
    lossy: bool = False


class ConsistencyOracle:
    """Cross-checks a live server against independent re-derivations.

    Attach it *after* registering clients (or call :meth:`watch_client`
    for late arrivals); per cycle, bracket the evaluation with
    :meth:`begin_cycle` / :meth:`end_cycle`::

        oracle = ConsistencyOracle(server)
        for cycle, now in enumerate(times):
            oracle.begin_cycle()
            result = server.evaluate_cycle(now)
            divergences = oracle.end_cycle(cycle, result.updates)

    A clean run reports no divergences and leaves
    ``oracle_divergence_total`` at zero.
    """

    def __init__(self, server: LocationAwareServer):
        self.server = server
        self.divergences: list[Divergence] = []
        self._mirrors: dict[int, _MirrorClient] = {}
        self._prev_answers: dict[int, frozenset[int]] = {}
        self._m_checks = server.registry.counter("oracle_checks_total")
        server.add_observer(self)
        for client_id in server.client_ids():
            self.watch_client(client_id)

    def watch_client(self, client_id: int) -> None:
        """Start mirroring ``client_id``'s downlink."""
        if client_id in self._mirrors:
            return
        self._mirrors[client_id] = _MirrorClient()
        self.server.link_of(client_id).delivery_observer = self._on_delivery

    # ------------------------------------------------------------------
    # Wire + protocol observation (called by the server/link, not users)
    # ------------------------------------------------------------------

    def _on_delivery(
        self, client_id: int, message: Message, delivered: bool
    ) -> None:
        mirror = self._mirrors[client_id]
        if not delivered:
            mirror.lossy = True
            return
        if isinstance(message, UpdateMessage):
            answer = mirror.answers.setdefault(message.qid, set())
            if message.sign == 1:
                answer.add(message.oid)
            else:
                answer.discard(message.oid)
        elif isinstance(message, FullAnswerMessage):
            mirror.answers[message.qid] = set(message.oids)

    def on_wakeup_begin(self, client_id: int) -> None:
        """The client rolls back to committed state before recovery."""
        mirror = self._mirrors.get(client_id)
        if mirror is None:
            return
        for qid in self.server.queries_of(client_id):
            mirror.answers[qid] = set(mirror.committed.get(qid, frozenset()))
        mirror.lossy = False

    def on_wakeup_end(self, client_id: int) -> None:
        """Recovery completed: the post-recovery answers are committed."""
        mirror = self._mirrors.get(client_id)
        if mirror is None:
            return
        for qid in self.server.queries_of(client_id):
            mirror.committed[qid] = frozenset(
                mirror.answers.get(qid, frozenset())
            )

    def on_commit(self, qid: int) -> None:
        mirror = self._mirrors.get(self.server.client_of(qid))
        if mirror is None:
            return
        mirror.committed[qid] = frozenset(mirror.answers.get(qid, frozenset()))

    # ------------------------------------------------------------------
    # Mirror introspection
    # ------------------------------------------------------------------

    def mirror_answer(self, client_id: int, qid: int) -> frozenset[int]:
        """What the mirrored client currently holds for ``qid``."""
        return frozenset(self._mirrors[client_id].answers.get(qid, frozenset()))

    def in_sync(self, client_id: int) -> bool:
        """True when the mirror matches the engine on every owned query."""
        engine = self.server.engine
        return all(
            self.mirror_answer(client_id, qid) == engine.answer_of(qid)
            for qid in self.server.queries_of(client_id)
        )

    # ------------------------------------------------------------------
    # Per-cycle checking
    # ------------------------------------------------------------------

    def begin_cycle(self) -> None:
        """Capture the pre-cycle engine answers for the replay check."""
        engine = self.server.engine
        self._prev_answers = {
            qid: engine.answer_of(qid) for qid in engine.queries
        }

    def end_cycle(self, cycle: int, updates: list[Update]) -> list[Divergence]:
        """Run all four checks; returns (and accumulates) divergences.

        The first divergence trips the server's flight recorder: the
        last-N protocol events leading to the inconsistency are exactly
        what the ring holds.
        """
        found: list[Divergence] = []
        with self.server.tracer.span("oracle_check"):
            self._check_replay(cycle, updates, found)
            self._check_snapshot(cycle, found)
            self._check_commit(cycle, found)
            self._check_desync(cycle, found)
        self._m_checks.inc()
        recorder = self.server.recorder
        recorder.record(
            "oracle_check", oracle_cycle=cycle, divergences=len(found)
        )
        for divergence in found:
            self.server.registry.counter(
                "oracle_divergence_total", labels={"kind": divergence.kind}
            ).inc()
            recorder.record(
                "oracle_divergence",
                check=divergence.kind,
                qid=divergence.qid,
                client=divergence.client_id,
                oids=list(divergence.oids),
            )
        if found:
            recorder.trigger(
                "oracle_divergence",
                check=found[0].kind,
                qid=found[0].qid,
            )
        self.divergences.extend(found)
        return found

    # -- the four checks ----------------------------------------------

    def _check_replay(
        self, cycle: int, updates: list[Update], found: list[Divergence]
    ) -> None:
        engine = self.server.engine
        by_qid: dict[int, list[Update]] = {}
        for update in updates:
            by_qid.setdefault(update.qid, []).append(update)
        for qid, previous in self._prev_answers.items():
            if qid not in engine.queries:
                continue  # unregistered mid-cycle
            replayed = apply_updates(set(previous), by_qid.get(qid, []))
            self._compare(
                "replay", cycle, qid, frozenset(replayed),
                engine.answer_of(qid),
                "prev answer + cycle updates vs engine answer", found,
            )

    def _check_snapshot(self, cycle: int, found: list[Divergence]) -> None:
        engine = self.server.engine
        for qid in engine.queries:
            self._compare(
                "snapshot", cycle, qid, self._recompute(qid),
                engine.answer_of(qid),
                "from-scratch recomputation vs engine answer", found,
            )

    def _check_commit(self, cycle: int, found: list[Divergence]) -> None:
        server = self.server
        for client_id, mirror in self._mirrors.items():
            for qid in server.queries_of(client_id):
                self._compare(
                    "commit", cycle, qid,
                    server.commits.committed_answer(qid),
                    mirror.committed.get(qid, frozenset()),
                    "server committed answer vs state the client "
                    "provably received (committed ⊆ delivered)", found,
                )

    def _check_desync(self, cycle: int, found: list[Divergence]) -> None:
        server = self.server
        engine = server.engine
        for client_id, mirror in self._mirrors.items():
            if mirror.lossy or not server.link_of(client_id).connected:
                continue
            for qid in server.queries_of(client_id):
                self._compare(
                    "desync", cycle, qid,
                    frozenset(mirror.answers.get(qid, frozenset())),
                    engine.answer_of(qid),
                    "loss-free client's mirrored answer vs engine answer",
                    found,
                )

    # -- helpers -------------------------------------------------------

    def _compare(
        self,
        kind: str,
        cycle: int,
        qid: int,
        got: frozenset[int],
        want: frozenset[int],
        detail: str,
        found: list[Divergence],
    ) -> None:
        if got == want:
            return
        try:
            client_id = self.server.client_of(qid)
        except KeyError:  # engine-only query, no client binding
            client_id = -1
        found.append(
            Divergence(
                kind=kind,
                cycle=cycle,
                qid=qid,
                client_id=client_id,
                oids=tuple(sorted(got ^ want)),
                detail=detail,
            )
        )

    def _recompute(self, qid: int) -> frozenset[int]:
        """Brute-force the answer from raw object state (no index, no
        incremental bookkeeping), using the same membership predicates
        the engine defines."""
        engine = self.server.engine
        query = engine.queries[qid]
        objects = engine.objects
        if query.kind is QueryKind.RANGE:
            return frozenset(
                oid
                for oid, state in objects.items()
                if query.region.contains_point(state.location)
            )
        if query.kind is QueryKind.KNN:
            ranked = sorted(
                (state.location.distance_to(query.center), oid)
                for oid, state in objects.items()
            )
            return frozenset(oid for _, oid in ranked[: query.k])
        return frozenset(
            oid
            for oid, state in objects.items()
            if engine._predicted_in_region(query, state)
        )
