"""Differential consistency checking for the continuous-query stack.

The :class:`ConsistencyOracle` watches a running
:class:`~repro.core.server.LocationAwareServer` from the outside — via
link delivery observers and server protocol observers, never from
inside the delivery path — and, each cycle, cross-checks four
independent derivations of "what the answer is":

1. **replay** — the previous engine answers plus the cycle's update
   stream must reproduce the new engine answers (the update language is
   complete);
2. **snapshot** — a from-scratch brute-force recomputation over all
   objects must match the engine's incrementally-maintained answers
   (the incremental evaluation is correct);
3. **commit** — the server's committed answer must equal the state the
   mirrored client provably received (the commit invariant
   *committed ⊆ delivered* from :mod:`repro.core.server`);
4. **desync** — a client that lost nothing since its last recovery must
   hold exactly the engine's answer (loss-free delivery is lossless).

Divergences are reported as :class:`Divergence` records with the query,
client, cycle and offending oids; counts land in the
``oracle_divergence_total{kind=...}`` counter so chaos runs can assert
on a single metric.
"""

from repro.check.oracle import ConsistencyOracle, Divergence

__all__ = ["ConsistencyOracle", "Divergence"]
