"""Per-tick simulation of objects moving on a road network.

Each simulated object follows a route of network nodes at the speed of
the road it is currently on (with a per-object jitter factor, standing in
for Brinkhoff's object classes).  On reaching its destination it picks a
new one and re-routes.  Every :meth:`MovingObjectSimulator.tick` advances
simulated time and returns the location reports the server receives —
optionally from only a *fraction* of the moved objects, which is exactly
the "update rate for objects (%)" axis of the paper's Figure 5(a).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.geometry import Point, Velocity
from repro.generator.paths import shortest_path
from repro.generator.roadnet import RoadEdge, RoadNetwork


@dataclass(frozen=True, slots=True)
class ObjectReport:
    """One location update as received by the location-aware server."""

    oid: int
    location: Point
    velocity: Velocity
    t: float


@dataclass(slots=True)
class _ObjectState:
    """Private per-object simulation state."""

    route: list[int]  # remaining node ids, route[0] = edge start
    edge: RoadEdge  # edge currently being traversed (route[0] -> route[1])
    progress: float  # distance covered along the current edge
    speed_factor: float  # per-object multiplier on road-class speed
    location: Point
    velocity: Velocity
    moved: bool = False  # did the object move since its last report?
    routes_completed: int = 0  # full routes finished (lifecycle)


class MovingObjectSimulator:
    """Moves ``object_count`` objects over ``net`` and streams reports.

    ``route_mode`` selects how new destinations are reached:

    * ``"shortest"`` — Dijkstra shortest-time path to a random node
      (Brinkhoff's behaviour); routes are memoised per (source, target).
    * ``"walk"`` — a non-backtracking random walk; O(1) per re-route and
      statistically similar traffic for throughput-oriented benchmarks.
    """

    def __init__(
        self,
        net: RoadNetwork,
        object_count: int,
        seed: int = 0,
        speed_jitter: float = 0.3,
        route_mode: str = "shortest",
        walk_length: int = 24,
        routes_per_life: int | None = None,
        arrivals_per_tick: int = 0,
        congestion_alpha: float = 0.0,
        edge_capacity: int = 10,
    ):
        """Beyond the basics, three Brinkhoff-generator behaviours:

        * ``routes_per_life`` — an object retires after completing that
          many routes (Brinkhoff's external objects leaving the map);
          retired ids land in :attr:`departed` for the tick.
        * ``arrivals_per_tick`` — new objects enter the map each tick
          with fresh ids.
        * ``congestion_alpha`` / ``edge_capacity`` — effective speed on
          an edge is ``base / (1 + alpha * occupancy / capacity)``, the
          generator's load-dependent speed reduction.
        """
        if object_count <= 0:
            raise ValueError(f"object_count must be positive, got {object_count}")
        if not 0.0 <= speed_jitter < 1.0:
            raise ValueError(f"speed_jitter must be in [0, 1), got {speed_jitter}")
        if route_mode not in ("shortest", "walk"):
            raise ValueError(f"unknown route_mode {route_mode!r}")
        if routes_per_life is not None and routes_per_life <= 0:
            raise ValueError(
                f"routes_per_life must be positive, got {routes_per_life}"
            )
        if arrivals_per_tick < 0:
            raise ValueError(
                f"arrivals_per_tick must be >= 0, got {arrivals_per_tick}"
            )
        if congestion_alpha < 0:
            raise ValueError(
                f"congestion_alpha must be >= 0, got {congestion_alpha}"
            )
        if edge_capacity <= 0:
            raise ValueError(f"edge_capacity must be positive, got {edge_capacity}")
        if not net.is_connected():
            raise ValueError("road network must be connected for routing")
        self.net = net
        self.route_mode = route_mode
        self.walk_length = walk_length
        self.routes_per_life = routes_per_life
        self.arrivals_per_tick = arrivals_per_tick
        self.congestion_alpha = congestion_alpha
        self.edge_capacity = edge_capacity
        self.now = 0.0
        self.departed: list[int] = []
        self._speed_jitter = speed_jitter
        self._rng = random.Random(seed)
        self._node_ids = list(net.nodes)
        self._route_cache: dict[tuple[int, int], list[int]] = {}
        self._objects: dict[int, _ObjectState] = {}
        self._edge_load: dict[RoadEdge, int] = {}
        self._next_oid = 0
        for __ in range(object_count):
            self._admit()

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------

    @property
    def object_ids(self) -> list[int]:
        return list(self._objects)

    def position_of(self, oid: int) -> Point:
        return self._objects[oid].location

    def velocity_of(self, oid: int) -> Velocity:
        return self._objects[oid].velocity

    def positions(self) -> dict[int, Point]:
        """A snapshot of every object's current location."""
        return {oid: state.location for oid, state in self._objects.items()}

    def initial_reports(self) -> list[ObjectReport]:
        """Reports announcing every object's starting location at t=now."""
        return [
            ObjectReport(oid, state.location, state.velocity, self.now)
            for oid, state in self._objects.items()
        ]

    def tick(
        self, dt: float, report_fraction: float = 1.0
    ) -> list[ObjectReport]:
        """Advance all objects by ``dt`` seconds and collect reports.

        ``report_fraction`` limits reporting to a random subset of the
        objects that moved (cheap GPS devices do not all phone home every
        period).  An object that skips a report stays *moved* and remains
        eligible next tick, so no movement is silently lost.
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        if not 0.0 <= report_fraction <= 1.0:
            raise ValueError(
                f"report_fraction must be in [0, 1], got {report_fraction}"
            )
        self.now += dt
        self.departed = []
        for oid, state in list(self._objects.items()):
            if self._advance(state, dt):
                del self._objects[oid]
                self.departed.append(oid)
        for __ in range(self.arrivals_per_tick):
            self._admit()

        reports: list[ObjectReport] = []
        for oid, state in self._objects.items():
            if not state.moved:
                continue
            if report_fraction < 1.0 and self._rng.random() > report_fraction:
                continue
            state.moved = False
            reports.append(
                ObjectReport(oid, state.location, state.velocity, self.now)
            )
        return reports

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _admit(self) -> int:
        """Introduce a new object with a fresh id; reports on next tick."""
        oid = self._next_oid
        self._next_oid += 1
        self._objects[oid] = self._spawn()
        return oid

    def _spawn(self) -> _ObjectState:
        start = self._rng.choice(self._node_ids)
        route = self._fresh_route(start)
        edge = self._edge_on_route(route)
        jitter = self._speed_jitter
        factor = 1.0 + self._rng.uniform(-jitter, jitter)
        state = _ObjectState(
            route=route,
            edge=edge,
            progress=self._rng.random() * edge.length,
            speed_factor=factor,
            location=Point(0.0, 0.0),
            velocity=Velocity.ZERO,
            moved=True,  # a newborn announces itself on its first tick
        )
        self._enter_edge(edge)
        self._refresh_pose(state)
        return state

    # -- congestion bookkeeping ----------------------------------------

    def _enter_edge(self, edge: RoadEdge) -> None:
        self._edge_load[edge] = self._edge_load.get(edge, 0) + 1

    def _leave_edge(self, edge: RoadEdge) -> None:
        remaining = self._edge_load.get(edge, 0) - 1
        if remaining <= 0:
            self._edge_load.pop(edge, None)
        else:
            self._edge_load[edge] = remaining

    def edge_occupancy(self, edge: RoadEdge) -> int:
        """How many objects currently travel ``edge`` (either direction)."""
        return self._edge_load.get(edge, 0)

    def _effective_speed(self, state: _ObjectState) -> float:
        """Road-class speed, jittered, slowed by edge congestion."""
        speed = state.edge.road_class.speed * state.speed_factor
        if self.congestion_alpha > 0:
            load = self._edge_load.get(state.edge, 0)
            speed /= 1.0 + self.congestion_alpha * load / self.edge_capacity
        return speed

    def _fresh_route(self, start: int) -> list[int]:
        """A new route of at least two nodes beginning at ``start``."""
        if self.route_mode == "walk":
            return self._random_walk(start)
        while True:
            target = self._rng.choice(self._node_ids)
            if target == start:
                continue
            key = (start, target)
            route = self._route_cache.get(key)
            if route is None:
                route = shortest_path(self.net, start, target)
                assert route is not None  # network is connected
                self._route_cache[key] = route
            return list(route)

    def _random_walk(self, start: int) -> list[int]:
        route = [start]
        previous = None
        for __ in range(self.walk_length):
            edges = self.net.edges_from(route[-1])
            choices = [e for e in edges if e.other_end(route[-1]) != previous]
            edge = self._rng.choice(choices or edges)
            previous = route[-1]
            route.append(edge.other_end(previous))
        return route

    def _edge_on_route(self, route: list[int]) -> RoadEdge:
        for edge in self.net.edges_from(route[0]):
            if edge.other_end(route[0]) == route[1]:
                return edge
        raise ValueError(f"route hop {route[0]}->{route[1]} has no edge")

    def _advance(self, state: _ObjectState, dt: float) -> bool:
        """Move one object for ``dt`` seconds; True means it retired."""
        remaining = dt
        while remaining > 0:
            speed = self._effective_speed(state)
            to_edge_end = state.edge.length - state.progress
            time_to_end = to_edge_end / speed
            if time_to_end > remaining:
                state.progress += speed * remaining
                remaining = 0.0
            else:
                remaining -= time_to_end
                state.route.pop(0)
                self._leave_edge(state.edge)
                if len(state.route) < 2:
                    state.routes_completed += 1
                    if (
                        self.routes_per_life is not None
                        and state.routes_completed >= self.routes_per_life
                    ):
                        return True
                    state.route = self._fresh_route(state.route[0])
                state.edge = self._edge_on_route(state.route)
                state.progress = 0.0
                self._enter_edge(state.edge)
        self._refresh_pose(state)
        state.moved = True
        return False

    def _refresh_pose(self, state: _ObjectState) -> None:
        """Recompute location and velocity from route-relative progress."""
        start = self.net.nodes[state.route[0]]
        end = self.net.nodes[state.route[1]]
        fraction = (
            state.progress / state.edge.length if state.edge.length > 0 else 0.0
        )
        state.location = Point(
            start.x + (end.x - start.x) * fraction,
            start.y + (end.y - start.y) * fraction,
        )
        heading = math.atan2(end.y - start.y, end.x - start.x)
        speed = self._effective_speed(state)
        state.velocity = Velocity(
            speed * math.cos(heading), speed * math.sin(heading)
        )
