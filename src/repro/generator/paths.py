"""Shortest-path routing over road networks.

Objects route by travel *time*, not distance — a longer highway detour
beats a short crawl through side streets, which is what produces the
characteristic traffic concentration on fast roads.
"""

from __future__ import annotations

import heapq

from repro.generator.roadnet import RoadEdge, RoadNetwork


def shortest_path(
    net: RoadNetwork, source: int, target: int
) -> list[int] | None:
    """The minimum-travel-time node sequence from ``source`` to ``target``.

    Plain Dijkstra with a lazy-deletion binary heap.  Returns ``None``
    when the target is unreachable, and ``[source]`` when source and
    target coincide.
    """
    for node in (source, target):
        if node not in net.nodes:
            raise KeyError(f"unknown node {node}")
    if source == target:
        return [source]

    best: dict[int, float] = {source: 0.0}
    parent: dict[int, int] = {}
    heap: list[tuple[float, int]] = [(0.0, source)]
    settled: set[int] = set()

    while heap:
        cost, node = heapq.heappop(heap)
        if node in settled:
            continue
        if node == target:
            return _reconstruct(parent, source, target)
        settled.add(node)
        for edge in net.edges_from(node):
            neighbor = edge.other_end(node)
            if neighbor in settled:
                continue
            candidate = cost + edge.travel_time
            if candidate < best.get(neighbor, float("inf")):
                best[neighbor] = candidate
                parent[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))
    return None


def _reconstruct(parent: dict[int, int], source: int, target: int) -> list[int]:
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def path_length(net: RoadNetwork, path: list[int]) -> float:
    """Total geometric length of a node path (not travel time)."""
    total = 0.0
    for u, v in zip(path, path[1:]):
        edge = _edge_between(net, u, v)
        total += edge.length
    return total


def path_travel_time(net: RoadNetwork, path: list[int]) -> float:
    """Total travel time of a node path at free-flow speeds."""
    total = 0.0
    for u, v in zip(path, path[1:]):
        edge = _edge_between(net, u, v)
        total += edge.travel_time
    return total


def _edge_between(net: RoadNetwork, u: int, v: int) -> RoadEdge:
    for edge in net.edges_from(u):
        if edge.other_end(u) == v:
            return edge
    raise ValueError(f"no edge between {u} and {v}")
