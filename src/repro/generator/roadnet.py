"""Synthetic road networks.

A road network is an undirected graph embedded in the unit-square world:
nodes are intersections with coordinates, edges are road segments with a
road class that determines travel speed.  Two builders are provided:

* :func:`manhattan_city` — a regular grid of streets with periodic
  arterials and a highway ring, the classic synthetic stand-in for the
  city maps shipped with Brinkhoff's generator;
* :func:`random_network` — random intersections connected to their
  nearest neighbours plus a spanning backbone, guaranteeing a connected
  graph for routing.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.geometry import Point, Rect, Segment


class RoadClass(enum.Enum):
    """Road categories with distinct free-flow speeds (space units / s).

    The unit-square world models a ~20 km city, so 0.0008/s is about
    58 km/h.  At these speeds an object covers 1-4 thousandths of the
    world per 5-second evaluation period — small relative to the paper's
    0.01-0.04 query side lengths, which is what makes incremental
    evaluation pay off (answers overlap heavily between periods).
    """

    HIGHWAY = "highway"
    ARTERIAL = "arterial"
    STREET = "street"

    @property
    def speed(self) -> float:
        return _ROAD_SPEEDS[self]


_ROAD_SPEEDS = {
    RoadClass.HIGHWAY: 0.0008,
    RoadClass.ARTERIAL: 0.0004,
    RoadClass.STREET: 0.0002,
}


@dataclass(frozen=True, slots=True)
class RoadEdge:
    """An undirected road segment between two node ids."""

    u: int
    v: int
    road_class: RoadClass
    length: float

    @property
    def travel_time(self) -> float:
        return self.length / self.road_class.speed

    def other_end(self, node: int) -> int:
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise ValueError(f"node {node} is not an endpoint of this edge")


@dataclass(slots=True)
class RoadNetwork:
    """An embedded road graph with adjacency lookup."""

    nodes: dict[int, Point] = field(default_factory=dict)
    edges: list[RoadEdge] = field(default_factory=list)
    _adjacency: dict[int, list[RoadEdge]] = field(default_factory=dict)

    def add_node(self, node_id: int, location: Point) -> None:
        if node_id in self.nodes:
            raise ValueError(f"node {node_id} already exists")
        self.nodes[node_id] = location
        self._adjacency[node_id] = []

    def add_edge(self, u: int, v: int, road_class: RoadClass) -> RoadEdge:
        if u == v:
            raise ValueError("self-loop edges are not roads")
        for node in (u, v):
            if node not in self.nodes:
                raise KeyError(f"unknown node {node}")
        length = self.nodes[u].distance_to(self.nodes[v])
        edge = RoadEdge(u, v, road_class, length)
        self.edges.append(edge)
        self._adjacency[u].append(edge)
        self._adjacency[v].append(edge)
        return edge

    def edges_from(self, node: int) -> list[RoadEdge]:
        return self._adjacency[node]

    def degree(self, node: int) -> int:
        return len(self._adjacency[node])

    def edge_segment(self, edge: RoadEdge) -> Segment:
        return Segment(self.nodes[edge.u], self.nodes[edge.v])

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def bounding_rect(self) -> Rect:
        xs = [p.x for p in self.nodes.values()]
        ys = [p.y for p in self.nodes.values()]
        return Rect(min(xs), min(ys), max(xs), max(ys))

    def is_connected(self) -> bool:
        """Whether every node is reachable from every other node."""
        if not self.nodes:
            return True
        start = next(iter(self.nodes))
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for edge in self._adjacency[node]:
                neighbor = edge.other_end(node)
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(self.nodes)


def manhattan_city(
    blocks: int = 16,
    world: Rect = Rect(0.0, 0.0, 1.0, 1.0),
    arterial_every: int = 4,
) -> RoadNetwork:
    """A grid city: ``blocks x blocks`` blocks of streets.

    Every ``arterial_every``-th row/column of roads is an arterial, and
    the outer ring is a highway — so shortest *time* paths prefer the
    faster roads, giving the skewed traffic the Brinkhoff generator is
    known for.
    """
    if blocks < 1:
        raise ValueError(f"need at least one block, got {blocks}")
    net = RoadNetwork()
    side = blocks + 1
    dx = world.width / blocks
    dy = world.height / blocks

    for row in range(side):
        for col in range(side):
            net.add_node(
                row * side + col,
                Point(world.min_x + col * dx, world.min_y + row * dy),
            )

    def class_for(line_index: int, is_ring: bool) -> RoadClass:
        if is_ring:
            return RoadClass.HIGHWAY
        if arterial_every > 0 and line_index % arterial_every == 0:
            return RoadClass.ARTERIAL
        return RoadClass.STREET

    for row in range(side):
        is_ring_row = row in (0, side - 1)
        for col in range(blocks):
            net.add_edge(
                row * side + col,
                row * side + col + 1,
                class_for(row, is_ring_row),
            )
    for col in range(side):
        is_ring_col = col in (0, side - 1)
        for row in range(blocks):
            net.add_edge(
                row * side + col,
                (row + 1) * side + col,
                class_for(col, is_ring_col),
            )
    return net


def random_network(
    node_count: int = 200,
    k_nearest: int = 3,
    seed: int = 0,
    world: Rect = Rect(0.0, 0.0, 1.0, 1.0),
) -> RoadNetwork:
    """Random intersections wired to nearest neighbours plus a backbone.

    Each node connects to its ``k_nearest`` nearest neighbours as
    streets; a greedy nearest-unvisited tour is added as an arterial
    backbone to guarantee connectivity.
    """
    if node_count < 2:
        raise ValueError(f"need at least two nodes, got {node_count}")
    rng = random.Random(seed)
    net = RoadNetwork()
    for node_id in range(node_count):
        net.add_node(
            node_id,
            Point(
                world.min_x + rng.random() * world.width,
                world.min_y + rng.random() * world.height,
            ),
        )

    existing: set[frozenset[int]] = set()

    def connect(u: int, v: int, road_class: RoadClass) -> None:
        pair = frozenset((u, v))
        if u != v and pair not in existing:
            existing.add(pair)
            net.add_edge(u, v, road_class)

    locations = net.nodes
    for u in range(node_count):
        ranked = sorted(
            (v for v in range(node_count) if v != u),
            key=lambda v: locations[u].squared_distance_to(locations[v]),
        )
        for v in ranked[:k_nearest]:
            connect(u, v, RoadClass.STREET)

    # Greedy nearest-unvisited tour as the connecting backbone.
    unvisited = set(range(1, node_count))
    current = 0
    while unvisited:
        nearest = min(
            unvisited,
            key=lambda v: locations[current].squared_distance_to(locations[v]),
        )
        connect(current, nearest, RoadClass.ARTERIAL)
        unvisited.discard(nearest)
        current = nearest
    return net
