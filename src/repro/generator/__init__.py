"""Network-based moving-object and workload generator.

The paper's experiment uses "the Network-based Generator of Moving
Objects [Brinkhoff, GeoInformatica 2002] to generate a set of 100K moving
objects and 100K moving queries.  The output of the generator is a set of
moving objects that move on the road network of a given city."

We do not have Brinkhoff's city maps, so this package builds the closest
synthetic equivalent (documented in DESIGN.md): synthetic road networks
(a Manhattan-style grid city with road classes, or a random connected
network), Dijkstra routing over them, and a per-tick simulation that
moves objects along shortest paths at road-class speeds, re-routing when
they reach their destinations.  The observable output — a stream of
``(oid, location, velocity, t)`` reports — has the same structure the
location-aware server consumes, which is all the paper's experiment
relies on.
"""

from repro.generator.roadnet import RoadClass, RoadNetwork, manhattan_city, random_network
from repro.generator.paths import shortest_path, path_length
from repro.generator.mobility import MovingObjectSimulator, ObjectReport
from repro.generator.workload import (
    QuerySpec,
    WorkloadConfig,
    WorkloadGenerator,
)

__all__ = [
    "RoadClass",
    "RoadNetwork",
    "manhattan_city",
    "random_network",
    "shortest_path",
    "path_length",
    "MovingObjectSimulator",
    "ObjectReport",
    "QuerySpec",
    "WorkloadConfig",
    "WorkloadGenerator",
]
