"""Continuous-query workload generation.

The paper's experiment "choose[s] some points randomly and consider[s]
them as centers of square queries", with a population of moving queries
alongside the moving objects.  A :class:`WorkloadGenerator` produces:

* stationary range queries — random square regions;
* moving range queries — squares centred on a *carrier* moving object
  (a driver asking "what is around me"), re-centred whenever the carrier
  reports;
* k-NN queries — stationary or carried, with a configurable k;
* predictive range queries — squares evaluated against predicted
  positions at ``now + horizon``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.geometry import Point, Rect
from repro.generator.mobility import MovingObjectSimulator


@dataclass(frozen=True, slots=True)
class QuerySpec:
    """Static description of one continuous query in the workload.

    ``kind`` is ``"range"``, ``"knn"`` or ``"predictive"``; ``carrier``
    is the object the query follows (``None`` for stationary queries).
    """

    qid: int
    kind: str
    center: Point
    side: float = 0.0  # square side for range/predictive queries
    k: int = 0  # neighbour count for knn queries
    horizon: float = 0.0  # look-ahead seconds for predictive queries
    carrier: int | None = None

    def region(self) -> Rect:
        """The square region for range-kind queries."""
        if self.kind == "knn":
            raise ValueError("knn queries have no fixed rectangular region")
        return Rect.square(self.center, self.side)

    def recentred(self, center: Point) -> "QuerySpec":
        """The same query moved to a new center (carrier moved)."""
        return QuerySpec(
            self.qid, self.kind, center, self.side, self.k, self.horizon, self.carrier
        )


@dataclass(frozen=True, slots=True)
class WorkloadConfig:
    """Knobs for the generated query population.

    Defaults mirror the paper's setup: square range queries whose side
    length is a small fraction of the unit world (Figure 5(b) sweeps
    0.01–0.04), with half of the queries moving.
    """

    range_queries: int = 100
    knn_queries: int = 0
    predictive_queries: int = 0
    side: float = 0.02
    k: int = 3
    horizon: float = 30.0
    moving_fraction: float = 0.5
    seed: int = 0


class WorkloadGenerator:
    """Builds query specs over a simulator and streams query movement."""

    def __init__(
        self,
        config: WorkloadConfig,
        sim: MovingObjectSimulator,
        first_qid: int = 0,
    ):
        self.config = config
        self.sim = sim
        self._rng = random.Random(config.seed)
        self.specs: dict[int, QuerySpec] = {}
        self._carried: dict[int, list[QuerySpec]] = {}
        qid = first_qid
        qid = self._build_kind("range", config.range_queries, qid)
        qid = self._build_kind("knn", config.knn_queries, qid)
        self._build_kind("predictive", config.predictive_queries, qid)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build_kind(self, kind: str, count: int, next_qid: int) -> int:
        object_ids = self.sim.object_ids
        for __ in range(count):
            carrier: int | None = None
            if self._rng.random() < self.config.moving_fraction:
                carrier = self._rng.choice(object_ids)
                center = self.sim.position_of(carrier)
            else:
                center = Point(self._rng.random(), self._rng.random())
            spec = QuerySpec(
                qid=next_qid,
                kind=kind,
                center=center,
                side=self.config.side,
                k=self.config.k,
                horizon=self.config.horizon,
                carrier=carrier,
            )
            self.specs[next_qid] = spec
            if carrier is not None:
                self._carried.setdefault(carrier, []).append(spec)
            next_qid += 1
        return next_qid

    # ------------------------------------------------------------------
    # Streaming
    # ------------------------------------------------------------------

    @property
    def moving_query_count(self) -> int:
        return sum(len(specs) for specs in self._carried.values())

    def updates_for_moved_objects(
        self, moved_oids: list[int]
    ) -> list[QuerySpec]:
        """Re-centred specs for queries whose carrier just reported.

        The caller passes the oids from this tick's object reports; each
        carried query follows its carrier to the carrier's new location.
        The stored spec is updated so subsequent calls see current state.
        """
        updated: list[QuerySpec] = []
        for oid in moved_oids:
            for spec in self._carried.get(oid, ()):
                fresh = spec.recentred(self.sim.position_of(oid))
                self.specs[fresh.qid] = fresh
                updated.append(fresh)
        # Keep the carried registry pointing at the fresh specs.
        for spec in updated:
            carried = self._carried[spec.carrier]  # type: ignore[index]
            for i, existing in enumerate(carried):
                if existing.qid == spec.qid:
                    carried[i] = spec
        return updated
