"""Small measurement helpers: wall-clock timing, series, table printing.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output consistent across benchmarks.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field


class StopWatch:
    """Accumulating wall-clock timer.

    >>> watch = StopWatch()
    >>> with watch:
    ...     pass
    >>> watch.total >= 0.0
    True
    """

    def __init__(self) -> None:
        self.total = 0.0
        self.laps: list[float] = []
        self._started: float | None = None

    def __enter__(self) -> "StopWatch":
        self._started = time.perf_counter()  # timing: allowed — this IS the stopwatch
        return self

    def __exit__(self, *exc_info: object) -> None:
        assert self._started is not None
        lap = time.perf_counter() - self._started  # timing: allowed — this IS the stopwatch
        self._started = None
        self.laps.append(lap)
        self.total += lap

    @property
    def mean(self) -> float:
        return self.total / len(self.laps) if self.laps else 0.0


class PhaseTimer:
    """Accumulates named wall-clock phase durations into one dict.

    The engine wraps each evaluation phase in :meth:`phase`; the backing
    ``seconds`` dict (usually ``EngineStats.phase_seconds``) maps phase
    name to cumulative seconds, making the cost of a bulk evaluation
    observable phase-by-phase.

    >>> timings: dict[str, float] = {}
    >>> timer = PhaseTimer(timings)
    >>> with timer.phase("join"):
    ...     pass
    >>> timings["join"] >= 0.0
    True
    """

    __slots__ = ("seconds",)

    def __init__(self, seconds: dict[str, float] | None = None):
        self.seconds: dict[str, float] = {} if seconds is None else seconds

    def phase(self, name: str) -> "_PhaseLap":
        return _PhaseLap(self.seconds, name)


class _PhaseLap:
    """One timed phase entry (context manager handed out by PhaseTimer)."""

    __slots__ = ("_seconds", "_name", "_started")

    def __init__(self, seconds: dict[str, float], name: str):
        self._seconds = seconds
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_PhaseLap":
        self._started = time.perf_counter()  # timing: allowed — this IS the stopwatch
        return self

    def __exit__(self, *exc_info: object) -> None:
        lap = time.perf_counter() - self._started  # timing: allowed — this IS the stopwatch
        self._seconds[self._name] = self._seconds.get(self._name, 0.0) + lap


@dataclass(slots=True)
class Series:
    """A named sequence of numeric observations."""

    name: str
    values: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(value)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.values) if self.values else 0.0

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def minimum(self) -> float:
        return min(self.values) if self.values else 0.0

    @property
    def maximum(self) -> float:
        return max(self.values) if self.values else 0.0

    def summary(self) -> str:
        return (
            f"{self.name}: mean={self.mean:.3f} "
            f"min={self.minimum:.3f} max={self.maximum:.3f} "
            f"n={len(self.values)}"
        )


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """A plain-text table with right-aligned numeric-looking columns."""
    rendered = [[_render(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered)) if rendered else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def _render(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
