"""Measurement utilities shared by the benchmarks and examples."""

from repro.stats.metrics import Series, StopWatch, format_table

__all__ = ["Series", "StopWatch", "format_table"]
