"""Measurement utilities shared by the benchmarks and examples."""

from repro.stats.metrics import PhaseTimer, Series, StopWatch, format_table

__all__ = ["PhaseTimer", "Series", "StopWatch", "format_table"]
