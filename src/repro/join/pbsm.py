"""Partition Based Spatial-Merge join (Patel & DeWitt, SIGMOD 1996).

The paper's bulk evaluation step cites PBSM as the spatial join it runs
over the buffered updates.  This implementation keeps PBSM's defining
features in memory:

* both inputs are *partitioned* into spatial tiles, with replication of
  entries that straddle tile boundaries;
* within each tile the candidates are matched by a *plane sweep* along x;
* duplicate pairs from replicated entries are suppressed with the
  reference-point method (a pair is reported only by the tile that
  contains the intersection's reference corner), so no global dedup set
  is consulted in the common case.
"""

from __future__ import annotations

from collections import defaultdict

from repro.geometry import Point, Rect
from repro.grid import Grid


def pbsm_join(
    objects: dict[int, Point],
    queries: dict[int, Rect],
    grid: Grid,
) -> set[tuple[int, int]]:
    """All ``(oid, qid)`` containment pairs via tile partition + plane sweep."""
    object_tiles: defaultdict[int, list[tuple[float, int]]] = defaultdict(list)
    for oid, location in objects.items():
        object_tiles[grid.cell_of(location)].append((location.x, oid))

    query_tiles: defaultdict[int, list[tuple[float, float, int]]] = defaultdict(list)
    for qid, region in queries.items():
        for cell in grid.cells_overlapping(region):
            query_tiles[cell].append((region.min_x, region.max_x, qid))

    matches: set[tuple[int, int]] = set()
    for cell, residents in object_tiles.items():
        candidates = query_tiles.get(cell)
        if not candidates:
            continue
        tile_rect = grid.cell_rect(cell)
        _sweep_tile(residents, candidates, objects, queries, tile_rect, matches)
    return matches


def _sweep_tile(
    residents: list[tuple[float, int]],
    candidates: list[tuple[float, float, int]],
    objects: dict[int, Point],
    queries: dict[int, Rect],
    tile: Rect,
    matches: set[tuple[int, int]],
) -> None:
    """Plane-sweep one tile along x; report de-duplicated pairs."""
    residents.sort()
    candidates.sort()

    active: list[tuple[float, float, int]] = []  # (max_x, min_x, qid)
    cursor = 0
    for x, oid in residents:
        # Admit queries whose x-interval has started.
        while cursor < len(candidates) and candidates[cursor][0] <= x:
            min_x, max_x, qid = candidates[cursor]
            active.append((max_x, min_x, qid))
            cursor += 1
        # Retire queries whose x-interval has ended.
        if active:
            active = [entry for entry in active if entry[0] >= x]
        location = objects[oid]
        for __, __, qid in active:
            region = queries[qid]
            if not region.contains_point(location):
                continue
            # Reference-point dedup: only the tile containing the
            # object's location reports the pair.  Point objects have a
            # single home tile, so the containment check suffices.
            if tile.contains_point(location):
                matches.add((oid, qid))
