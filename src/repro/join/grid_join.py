"""Grid-partitioned spatial join between point objects and rectangle queries."""

from __future__ import annotations

from collections import defaultdict

from repro.geometry import Point, Rect
from repro.grid import Grid


def grid_join(
    objects: dict[int, Point],
    queries: dict[int, Rect],
    grid: Grid,
) -> set[tuple[int, int]]:
    """All ``(oid, qid)`` containment pairs, computed through ``grid``.

    Objects hash to their home cell; each query visits only the cells its
    rectangle overlaps and tests the objects resident there.  A pair is
    tested at most ``cells(query)`` times but reported once (the result
    is a set), and with well-chosen granularity each query touches a
    handful of cells.
    """
    buckets: defaultdict[int, list[int]] = defaultdict(list)
    for oid, location in objects.items():
        buckets[grid.cell_of(location)].append(oid)

    matches: set[tuple[int, int]] = set()
    scratch: list[int] = []  # reused clip buffer; one allocation per join
    for qid, region in queries.items():
        for cell in grid.cells_overlapping_into(region, scratch):
            residents = buckets.get(cell)
            if not residents:
                continue
            for oid in residents:
                if region.contains_point(objects[oid]):
                    matches.add((oid, qid))
    return matches
