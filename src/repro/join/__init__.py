"""Spatial join algorithms.

With shared execution, "evaluating a set of concurrent continuous
spatio-temporal queries is reduced to a join between a set of moving
objects and a set of moving queries" — so the join is the engine's inner
loop.  Three implementations are provided:

* :func:`nested_loop_join` — the O(n*m) reference; trivially correct and
  used as the oracle in tests.
* :func:`grid_join` — hash objects into uniform grid cells, clip query
  rectangles to cells, test each (object, query) pair at most once.  This
  mirrors what the incremental engine does in place over its resident
  grid index.
* :func:`pbsm_join` — Partition Based Spatial-Merge join (Patel & DeWitt,
  SIGMOD 1996, the algorithm the paper cites for its bulk processing):
  partition both inputs into tiles, run a plane sweep within each tile,
  deduplicate pairs reported by multiple tiles via the reference-point
  method.
"""

from repro.join.nested_loop import nested_loop_join
from repro.join.grid_join import grid_join
from repro.join.pbsm import pbsm_join

__all__ = ["nested_loop_join", "grid_join", "pbsm_join"]
