"""Reference nested-loop spatial join."""

from __future__ import annotations

from repro.geometry import Point, Rect


def nested_loop_join(
    objects: dict[int, Point], queries: dict[int, Rect]
) -> set[tuple[int, int]]:
    """All ``(oid, qid)`` pairs where the object lies inside the query.

    Quadratic and allocation-free per pair; exists as the correctness
    oracle for the smarter joins and as the honest baseline in the join
    benchmark.
    """
    matches: set[tuple[int, int]] = set()
    for qid, region in queries.items():
        for oid, location in objects.items():
            if region.contains_point(location):
                matches.add((oid, qid))
    return matches
