"""The Q-index baseline (Prabhakar et al., IEEE ToC 2002).

"The main idea of the Q-index is to build an R-tree-like index structure
on the queries instead of the objects.  Then, at each time interval T,
moving objects probe the Q-index to find the queries they belong to.
The Q-index is limited in two aspects: (1) It performs reevaluation of
all the queries every T time units.  (2) It is applicable only for
stationary queries."  Both limitations are preserved here deliberately.
"""

from __future__ import annotations

from repro.geometry import Point, Rect, Velocity
from repro.net import FullAnswerMessage
from repro.rtree import RTree, str_bulk_load


class QIndexEngine:
    """An R-tree over stationary query regions, probed by every object."""

    def __init__(
        self, max_entries: int = 16, world: Rect = Rect(0.0, 0.0, 1.0, 1.0)
    ):
        self._tree = RTree(max_entries=max_entries)
        self._max_entries = max_entries
        self.world = world
        self.locations: dict[int, Point] = {}
        self.regions: dict[int, Rect] = {}
        self.now = 0.0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def report_object(
        self,
        oid: int,
        location: Point,
        t: float,
        velocity: Velocity = Velocity.ZERO,
    ) -> None:
        self.locations[oid] = self.world.clamp_point(location)

    def remove_object(self, oid: int) -> None:
        del self.locations[oid]

    def register_range_query(self, qid: int, region: Rect, t: float = 0.0) -> None:
        region = self.world.clip_or_pin(region)
        self.regions[qid] = region
        self._tree.insert(qid, region)

    def move_range_query(self, qid: int, region: Rect, t: float) -> None:
        raise NotImplementedError(
            "the Q-index supports stationary queries only"
        )

    def unregister_query(self, qid: int) -> None:
        del self.regions[qid]
        self._tree.delete(qid)

    def bulk_register(self, queries: dict[int, Rect]) -> None:
        """Build the index over a full query population with STR."""
        overlap = set(queries) & set(self.regions)
        if overlap:
            raise KeyError(f"queries already registered: {sorted(overlap)[:5]}")
        self.regions.update(
            {qid: self.world.clip_or_pin(region) for qid, region in queries.items()}
        )
        combined = [(qid, region) for qid, region in self.regions.items()]
        self._tree = str_bulk_load(combined, max_entries=self._max_entries)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, now: float | None = None) -> dict[int, frozenset[int]]:
        """Every object probes the query index; all answers rebuilt."""
        if now is not None:
            self.now = now
        answers: dict[int, set[int]] = {qid: set() for qid in self.regions}
        for oid, location in self.locations.items():
            for hit in self._tree.search_point(location):
                answers[hit.key].add(oid)
        return {qid: frozenset(members) for qid, members in answers.items()}

    def answer_bytes(self, answers: dict[int, frozenset[int]]) -> int:
        return sum(
            FullAnswerMessage(qid, members).size_bytes
            for qid, members in answers.items()
        )
