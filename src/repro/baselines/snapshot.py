"""Snapshot re-evaluation baseline.

"A naive way to process continuous spatio-temporal queries is to
abstract the continuous queries into a series of snapshot queries ...
The naive approach incurs redundant processing where there may be only a
slight change in the query answer between any two consecutive
evaluations."  This engine is that approach: correct, stateless between
periods, and paying full evaluation plus full retransmission every time.
"""

from __future__ import annotations

from repro.geometry import Point, Rect, Velocity
from repro.grid import Grid, GridIndex
from repro.net import FullAnswerMessage


class SnapshotEngine:
    """Re-evaluates every registered range query every period."""

    def __init__(self, world: Rect = Rect(0.0, 0.0, 1.0, 1.0), grid_size: int = 64):
        self.grid = Grid(world, grid_size)
        self.index = GridIndex(self.grid)
        self.locations: dict[int, Point] = {}
        self.regions: dict[int, Rect] = {}
        self.now = 0.0

    # ------------------------------------------------------------------
    # Ingestion — same surface shape as the incremental engine
    # ------------------------------------------------------------------

    def report_object(
        self,
        oid: int,
        location: Point,
        t: float,
        velocity: Velocity = Velocity.ZERO,
    ) -> None:
        location = self.grid.world.clamp_point(location)
        self.locations[oid] = location
        self.index.place_object_at(oid, location)

    def remove_object(self, oid: int) -> None:
        del self.locations[oid]
        self.index.remove_object(oid)

    def register_range_query(self, qid: int, region: Rect, t: float = 0.0) -> None:
        if qid in self.regions:
            raise KeyError(f"query {qid} is already registered")
        self.regions[qid] = self.grid.world.clip_or_pin(region)

    def move_range_query(self, qid: int, region: Rect, t: float) -> None:
        if qid not in self.regions:
            raise KeyError(f"cannot move unknown query {qid}")
        self.regions[qid] = self.grid.world.clip_or_pin(region)

    def unregister_query(self, qid: int) -> None:
        del self.regions[qid]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, now: float | None = None) -> dict[int, frozenset[int]]:
        """Recompute every answer from scratch (no reuse of prior results)."""
        if now is not None:
            self.now = now
        answers: dict[int, frozenset[int]] = {}
        for qid, region in self.regions.items():
            members = frozenset(
                oid
                for oid in self.index.objects_overlapping(region)
                if region.contains_point(self.locations[oid])
            )
            answers[qid] = members
        return answers

    def answer_bytes(self, answers: dict[int, frozenset[int]]) -> int:
        """Bytes shipped: the complete answer of every query."""
        return sum(
            FullAnswerMessage(qid, members).size_bytes
            for qid, members in answers.items()
        )
