"""Baseline continuous-query processors the paper argues against.

* :class:`SnapshotEngine` — models the "series of snapshot queries"
  approach: every period each query is re-evaluated from scratch and the
  *complete* answer is shipped, even if nothing changed.
* :class:`QIndexEngine` — the Q-index (Prabhakar et al.): an R-tree is
  built over the (stationary) query regions and every object probes it
  each period; the paper's two criticisms are modelled faithfully — it
  re-evaluates everything every period and supports stationary queries
  only.
* :class:`PerQueryEngine` — one-query-at-a-time evaluation over an
  object R-tree, i.e. no shared execution; the scalability ablation
  measures how its cost grows with the number of outstanding queries.
* :class:`VCIEngine` — Velocity-Constrained Indexing (the other half of
  the paper's citation [20]): a rarely-rebuilt object index probed with
  velocity-expanded query regions and refined against fresh locations.
"""

from repro.baselines.snapshot import SnapshotEngine
from repro.baselines.qindex import QIndexEngine
from repro.baselines.perquery import PerQueryEngine
from repro.baselines.vci import VCIEngine
from repro.baselines.tpr import TprPredictiveEngine

__all__ = [
    "SnapshotEngine",
    "QIndexEngine",
    "PerQueryEngine",
    "VCIEngine",
    "TprPredictiveEngine",
]
