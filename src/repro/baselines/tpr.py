"""Predictive-query baseline over a TPR-tree.

The paper's point about trajectory access methods: they answer snapshot
predictive queries well, but offer "no special mechanisms to support the
continuous spatio-temporal queries" — each cycle the full window query
re-runs and the full answer is re-shipped.  This engine models exactly
that: objects live in a :class:`~repro.tprtree.TprTree`, predictive
range queries are re-evaluated from scratch every period.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Point, Rect, Velocity
from repro.net import FullAnswerMessage
from repro.tprtree import TprTree


@dataclass(frozen=True, slots=True)
class _PredictiveQuery:
    qid: int
    region: Rect
    horizon: float


class TprPredictiveEngine:
    """Re-evaluates predictive range queries via TPR-tree window search."""

    def __init__(
        self,
        horizon: float = 60.0,
        max_entries: int = 16,
        world: Rect = Rect(0.0, 0.0, 1.0, 1.0),
    ):
        self._tree = TprTree(horizon=horizon, max_entries=max_entries)
        self.horizon = horizon
        self.world = world
        self.queries: dict[int, _PredictiveQuery] = {}
        self.now = 0.0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def report_object(
        self,
        oid: int,
        location: Point,
        t: float,
        velocity: Velocity = Velocity.ZERO,
    ) -> None:
        if t < self.now:
            raise ValueError(f"report time {t} precedes clock {self.now}")
        self.now = max(self.now, t)
        location = self.world.clamp_point(location)
        if oid in self._tree:
            self._tree.update(oid, location, velocity, t)
        else:
            self._tree.insert(oid, location, velocity, t)

    def remove_object(self, oid: int) -> None:
        self._tree.delete(oid)

    def register_predictive_query(
        self, qid: int, region: Rect, horizon: float
    ) -> None:
        if qid in self.queries:
            raise KeyError(f"query {qid} is already registered")
        if not 0 < horizon <= self.horizon:
            raise ValueError(
                f"query horizon {horizon} must be in (0, {self.horizon}]"
            )
        region = self.world.clip_or_pin(region)
        self.queries[qid] = _PredictiveQuery(qid, region, horizon)

    def unregister_query(self, qid: int) -> None:
        del self.queries[qid]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, now: float | None = None) -> dict[int, frozenset[int]]:
        """Full window query per predictive query, every cycle."""
        if now is not None:
            if now < self.now:
                raise ValueError(f"time went backwards: {now} < {self.now}")
            self.now = now
        answers: dict[int, frozenset[int]] = {}
        for qid, query in self.queries.items():
            hits = self._tree.search_during(
                query.region, self.now, self.now + query.horizon
            )
            answers[qid] = frozenset(entry.key for entry in hits)
        return answers

    def answer_bytes(self, answers: dict[int, frozenset[int]]) -> int:
        return sum(
            FullAnswerMessage(qid, members).size_bytes
            for qid, members in answers.items()
        )
