"""Velocity-Constrained Indexing (Prabhakar et al., IEEE ToC 2002).

The companion technique to the Q-index in the paper's citation [20]:
index object *positions* once, together with a bound ``v_max`` on any
object's speed.  The index then stays valid without per-report updates —
at evaluation time each query region is expanded by ``v_max * (now -
t_index)`` to cover everywhere an indexed object could have reached, and
the candidate set is refined against the objects' current reported
locations.  The index is only rebuilt periodically, trading probe cost
(which grows as the expansion inflates) against update cost (zero
between rebuilds).
"""

from __future__ import annotations

from repro.geometry import Point, Rect, Velocity
from repro.net import FullAnswerMessage
from repro.rtree import RTree, str_bulk_load


class VCIEngine:
    """An R-tree over last-rebuild positions with velocity expansion."""

    def __init__(
        self,
        max_speed: float,
        max_entries: int = 16,
        world: Rect = Rect(0.0, 0.0, 1.0, 1.0),
    ):
        if max_speed <= 0:
            raise ValueError(f"max_speed must be positive, got {max_speed}")
        self.max_speed = max_speed
        self.world = world
        self._max_entries = max_entries
        self._tree = RTree(max_entries=max_entries)
        self._indexed_at = 0.0
        self.locations: dict[int, Point] = {}
        self.regions: dict[int, Rect] = {}
        self.now = 0.0
        self.probe_count = 0  # candidates touched, for the benchmark

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def report_object(
        self,
        oid: int,
        location: Point,
        t: float,
        velocity: Velocity = Velocity.ZERO,
    ) -> None:
        """Record the report; the index is deliberately NOT updated.

        Objects unknown to the index (born after the last rebuild) are
        inserted once so they are not invisible until the next rebuild.
        """
        location = self.world.clamp_point(location)
        if oid not in self.locations:
            self._tree.insert(oid, Rect(location.x, location.y, location.x, location.y))
        self.locations[oid] = location

    def remove_object(self, oid: int) -> None:
        del self.locations[oid]
        if oid in self._tree:
            self._tree.delete(oid)

    def register_range_query(self, qid: int, region: Rect, t: float = 0.0) -> None:
        if qid in self.regions:
            raise KeyError(f"query {qid} is already registered")
        self.regions[qid] = self.world.clip_or_pin(region)

    def move_range_query(self, qid: int, region: Rect, t: float) -> None:
        if qid not in self.regions:
            raise KeyError(f"cannot move unknown query {qid}")
        self.regions[qid] = self.world.clip_or_pin(region)

    def unregister_query(self, qid: int) -> None:
        del self.regions[qid]

    # ------------------------------------------------------------------
    # Index maintenance
    # ------------------------------------------------------------------

    @property
    def staleness(self) -> float:
        """Seconds since the index last reflected true positions."""
        return self.now - self._indexed_at

    @property
    def expansion(self) -> float:
        """Current query-expansion margin: ``v_max * staleness``."""
        return self.max_speed * self.staleness

    def rebuild(self, now: float | None = None) -> None:
        """Re-index every object at its current location."""
        if now is not None:
            self.now = now
        items = [
            (oid, Rect(p.x, p.y, p.x, p.y)) for oid, p in self.locations.items()
        ]
        self._tree = str_bulk_load(items, max_entries=self._max_entries)
        self._indexed_at = self.now

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, now: float | None = None) -> dict[int, frozenset[int]]:
        """Expanded probe + refinement against current locations.

        Exact as long as every object honoured ``max_speed`` since the
        last rebuild; a speed-limit violation can make candidates miss
        an object (the documented VCI failure mode, tested explicitly).
        """
        if now is not None:
            if now < self.now:
                raise ValueError(f"time went backwards: {now} < {self.now}")
            self.now = now
        margin = self.expansion
        answers: dict[int, frozenset[int]] = {}
        for qid, region in self.regions.items():
            expanded = region.expanded(margin)
            members = set()
            for hit in self._tree.search(expanded):
                self.probe_count += 1
                if region.contains_point(self.locations[hit.key]):
                    members.add(hit.key)
            answers[qid] = frozenset(members)
        return answers

    def answer_bytes(self, answers: dict[int, frozenset[int]]) -> int:
        return sum(
            FullAnswerMessage(qid, members).size_bytes
            for qid, members in answers.items()
        )
