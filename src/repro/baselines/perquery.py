"""Per-query evaluation baseline (no shared execution).

Represents the pre-SINA literature's stance the paper pushes against:
"Most of the existing spatio-temporal algorithms focus on evaluating
only one spatio-temporal query ... Handling each query as an individual
entity dramatically degrades the performance of the location-aware
server."  Each query runs its own R-tree range search every period; the
cost scales with the number of outstanding queries rather than with the
amount of change.
"""

from __future__ import annotations

from repro.geometry import Point, Rect, Velocity
from repro.net import FullAnswerMessage
from repro.rtree import RTree


class PerQueryEngine:
    """Evaluates each query independently over an object R-tree."""

    def __init__(
        self, max_entries: int = 16, world: Rect = Rect(0.0, 0.0, 1.0, 1.0)
    ):
        self._tree = RTree(max_entries=max_entries)
        self.world = world
        self.locations: dict[int, Point] = {}
        self.regions: dict[int, Rect] = {}
        self.now = 0.0

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def report_object(
        self,
        oid: int,
        location: Point,
        t: float,
        velocity: Velocity = Velocity.ZERO,
    ) -> None:
        location = self.world.clamp_point(location)
        point_rect = Rect(location.x, location.y, location.x, location.y)
        if oid in self.locations:
            self._tree.update(oid, point_rect)
        else:
            self._tree.insert(oid, point_rect)
        self.locations[oid] = location

    def remove_object(self, oid: int) -> None:
        del self.locations[oid]
        self._tree.delete(oid)

    def register_range_query(self, qid: int, region: Rect, t: float = 0.0) -> None:
        if qid in self.regions:
            raise KeyError(f"query {qid} is already registered")
        self.regions[qid] = self.world.clip_or_pin(region)

    def move_range_query(self, qid: int, region: Rect, t: float) -> None:
        if qid not in self.regions:
            raise KeyError(f"cannot move unknown query {qid}")
        self.regions[qid] = self.world.clip_or_pin(region)

    def unregister_query(self, qid: int) -> None:
        del self.regions[qid]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(self, now: float | None = None) -> dict[int, frozenset[int]]:
        """One independent R-tree range search per outstanding query."""
        if now is not None:
            self.now = now
        return {
            qid: frozenset(hit.key for hit in self._tree.search(region))
            for qid, region in self.regions.items()
        }

    def answer_bytes(self, answers: dict[int, frozenset[int]]) -> int:
        return sum(
            FullAnswerMessage(qid, members).size_bytes
            for qid, members in answers.items()
        )
