"""Time-parameterized bounding rectangles.

A TPBR is a rectangle valid at a reference time plus velocity bounds on
each face: at time ``t >= t_ref`` the rectangle has grown to

    [min_x + min_vx * dt,  max_x + max_vx * dt]  (dt = t - t_ref)

and likewise in y.  Because every face moves linearly in time, the union
of the rectangle over a time interval is exactly the union of its two
endpoint rectangles — which makes conservative window queries cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Point, Rect, Velocity


@dataclass(frozen=True, slots=True)
class TimeParameterizedRect:
    """A rectangle whose faces move with bounded velocities."""

    rect: Rect  # extent at t_ref
    t_ref: float
    min_vx: float
    min_vy: float
    max_vx: float
    max_vy: float

    def __post_init__(self) -> None:
        if self.min_vx > self.max_vx or self.min_vy > self.max_vy:
            raise ValueError("velocity bounds are inverted")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def for_point(
        cls, location: Point, velocity: Velocity, t: float
    ) -> "TimeParameterizedRect":
        """The degenerate TPBR of one moving point (exact, not a bound)."""
        return cls(
            Rect(location.x, location.y, location.x, location.y),
            t,
            velocity.vx,
            velocity.vy,
            velocity.vx,
            velocity.vy,
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def rect_at(self, t: float) -> Rect:
        """The (conservative) extent at time ``t >= t_ref``."""
        dt = t - self.t_ref
        if dt < 0:
            raise ValueError(f"cannot evaluate TPBR before t_ref: {t} < {self.t_ref}")
        return Rect(
            self.rect.min_x + self.min_vx * dt,
            self.rect.min_y + self.min_vy * dt,
            self.rect.max_x + self.max_vx * dt,
            self.rect.max_y + self.max_vy * dt,
        )

    def swept_rect(self, t_start: float, t_end: float) -> Rect:
        """The union of the extent over ``[t_start, t_end]``.

        Exact for linearly moving faces: each face coordinate is linear
        in t, so its extremum over the interval is at an endpoint.
        """
        if t_start > t_end:
            raise ValueError(f"empty interval [{t_start}, {t_end}]")
        return self.rect_at(t_start).union(self.rect_at(t_end))

    def intersects_at(self, region: Rect, t: float) -> bool:
        """Whether the extent at ``t`` overlaps ``region`` (timeslice)."""
        return self.rect_at(t).intersects(region)

    def intersects_during(
        self, region: Rect, t_start: float, t_end: float
    ) -> bool:
        """Conservative window test: may the extent overlap ``region``
        at some time in the interval?  Never reports false negatives."""
        return self.swept_rect(t_start, t_end).intersects(region)

    # ------------------------------------------------------------------
    # Combination (node MBR maintenance)
    # ------------------------------------------------------------------

    def normalized_to(self, t_ref: float) -> "TimeParameterizedRect":
        """The same moving rectangle re-anchored at a later ``t_ref``."""
        return TimeParameterizedRect(
            self.rect_at(t_ref),
            t_ref,
            self.min_vx,
            self.min_vy,
            self.max_vx,
            self.max_vy,
        )

    def union(self, other: "TimeParameterizedRect") -> "TimeParameterizedRect":
        """The tightest TPBR covering both, anchored at the later t_ref."""
        t_ref = max(self.t_ref, other.t_ref)
        a = self.normalized_to(t_ref)
        b = other.normalized_to(t_ref)
        return TimeParameterizedRect(
            a.rect.union(b.rect),
            t_ref,
            min(a.min_vx, b.min_vx),
            min(a.min_vy, b.min_vy),
            max(a.max_vx, b.max_vx),
            max(a.max_vy, b.max_vy),
        )

    def contains_tpbr_at(self, other: "TimeParameterizedRect", t: float) -> bool:
        """Whether this TPBR covers ``other`` at time ``t`` (for checks)."""
        return self.rect_at(t).expanded(1e-9).contains_rect(other.rect_at(t))

    def area_at(self, t: float) -> float:
        return self.rect_at(t).area
