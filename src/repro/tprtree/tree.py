"""The TPR-tree proper.

Structure follows the classic R-tree; the difference is that every
bounding rectangle is a :class:`TimeParameterizedRect` and all geometry
decisions (subtree choice, splits) are evaluated at a *decision time*
``t_ref + horizon / 2`` — the midpoint of the window the tree is tuned
to answer, the standard simplification of the TPR-tree's integrated-area
objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.geometry import Point, Rect, Velocity
from repro.rtree.node import quadratic_split
from repro.tprtree.tpbr import TimeParameterizedRect


@dataclass(frozen=True, slots=True)
class TprEntry:
    """A search hit: the indexed moving point's key and TPBR."""

    key: int
    tpbr: TimeParameterizedRect


@dataclass(slots=True, eq=False)
class _Node:
    is_leaf: bool
    tpbr: Optional[TimeParameterizedRect] = None
    entries: list[TprEntry] = field(default_factory=list)
    children: list["_Node"] = field(default_factory=list)
    parent: Optional["_Node"] = None

    def item_count(self) -> int:
        return len(self.entries) if self.is_leaf else len(self.children)

    def recompute_tpbr(self) -> None:
        tpbrs = (
            [e.tpbr for e in self.entries]
            if self.is_leaf
            else [c.tpbr for c in self.children if c.tpbr is not None]
        )
        if not tpbrs:
            self.tpbr = None
            return
        combined = tpbrs[0]
        for tpbr in tpbrs[1:]:
            combined = combined.union(tpbr)
        self.tpbr = combined

    def add_child(self, child: "_Node") -> None:
        self.children.append(child)
        child.parent = self


class TprTree:
    """A TPR-tree over moving points keyed by object id."""

    def __init__(self, horizon: float = 60.0, max_entries: int = 16):
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if max_entries < 4:
            raise ValueError(f"max_entries must be >= 4, got {max_entries}")
        self.horizon = horizon
        self.max_entries = max_entries
        self.min_entries = max_entries // 2
        self.now = 0.0
        self._root = _Node(is_leaf=True)
        self._leaf_of_key: dict[int, _Node] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._leaf_of_key)

    def __contains__(self, key: int) -> bool:
        return key in self._leaf_of_key

    @property
    def _decision_time(self) -> float:
        return self.now + self.horizon / 2.0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(
        self, key: int, location: Point, velocity: Velocity, t: float
    ) -> None:
        """Index a moving point observed at ``(location, t)``."""
        if key in self._leaf_of_key:
            raise KeyError(f"key {key} already indexed")
        if t < self.now:
            raise ValueError(f"report time {t} precedes tree clock {self.now}")
        self.now = max(self.now, t)
        tpbr = TimeParameterizedRect.for_point(location, velocity, t)
        leaf = self._choose_leaf(tpbr)
        leaf.entries.append(TprEntry(key, tpbr))
        self._leaf_of_key[key] = leaf
        self._grow_path(leaf, tpbr)
        if leaf.item_count() > self.max_entries:
            self._split(leaf)

    def delete(self, key: int) -> None:
        leaf = self._leaf_of_key.pop(key)
        leaf.entries = [e for e in leaf.entries if e.key != key]
        self._condense(leaf)

    def update(
        self, key: int, location: Point, velocity: Velocity, t: float
    ) -> None:
        """Re-index a moving point after a fresh report (delete+insert —
        the TPR-tree's standard update path)."""
        self.delete(key)
        self.insert(key, location, velocity, t)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search_at(self, region: Rect, t: float) -> Iterator[TprEntry]:
        """Timeslice query: entries predicted to overlap ``region`` at ``t``."""
        if t < self.now:
            raise ValueError(f"cannot query the past: {t} < {self.now}")
        root = self._root
        if root.tpbr is None or not root.tpbr.intersects_at(region, t):
            return
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for entry in node.entries:
                    if entry.tpbr.intersects_at(region, t):
                        yield entry
            else:
                for child in node.children:
                    if child.tpbr is not None and child.tpbr.intersects_at(
                        region, t
                    ):
                        stack.append(child)

    def search_during(
        self, region: Rect, t_start: float, t_end: float
    ) -> Iterator[TprEntry]:
        """Window query: entries whose predicted motion may overlap
        ``region`` at some time in ``[t_start, t_end]``.

        Leaf entries are *exact* (a point's TPBR is its true trajectory);
        inner nodes prune conservatively.
        """
        if t_start < self.now:
            raise ValueError(f"cannot query the past: {t_start} < {self.now}")
        root = self._root
        if root.tpbr is None or not root.tpbr.intersects_during(
            region, t_start, t_end
        ):
            return
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for entry in node.entries:
                    if self._point_enters(entry.tpbr, region, t_start, t_end):
                        yield entry
            else:
                for child in node.children:
                    if child.tpbr is not None and child.tpbr.intersects_during(
                        region, t_start, t_end
                    ):
                        stack.append(child)

    @staticmethod
    def _point_enters(
        tpbr: TimeParameterizedRect, region: Rect, t_start: float, t_end: float
    ) -> bool:
        """Exact test for a degenerate (point) TPBR via motion clipping."""
        from repro.geometry import LinearMotion

        motion = LinearMotion(
            Point(tpbr.rect.min_x, tpbr.rect.min_y),
            Velocity(tpbr.min_vx, tpbr.min_vy),
            tpbr.t_ref,
        )
        start = max(t_start, tpbr.t_ref)
        if t_end < start:
            return False
        return motion.time_in_rect(region, start, t_end) is not None

    # ------------------------------------------------------------------
    # Internals (R-tree machinery at the decision time)
    # ------------------------------------------------------------------

    def _choose_leaf(self, tpbr: TimeParameterizedRect) -> _Node:
        t = self._decision_time
        rect = tpbr.rect_at(t)
        node = self._root
        while not node.is_leaf:
            best, best_key = None, None
            for child in node.children:
                assert child.tpbr is not None
                child_rect = child.tpbr.rect_at(t)
                enlargement = child_rect.union(rect).area - child_rect.area
                key = (enlargement, child_rect.area)
                if best_key is None or key < best_key:
                    best, best_key = child, key
            assert best is not None
            node = best
        return node

    def _grow_path(self, node: _Node, tpbr: TimeParameterizedRect) -> None:
        """Widen TPBRs from ``node`` to the root after adding ``tpbr``.

        Unlike the static R-tree, each ancestor must be unioned with its
        *child's updated TPBR*, not with the new entry: a TPBR union of
        operands anchored at different times is a conservative cover, so
        ``parent ∪ entry`` need not contain ``child ∪ entry``.
        """
        node.tpbr = tpbr if node.tpbr is None else node.tpbr.union(tpbr)
        current = node
        while current.parent is not None:
            parent = current.parent
            assert current.tpbr is not None
            parent.tpbr = (
                current.tpbr
                if parent.tpbr is None
                else parent.tpbr.union(current.tpbr)
            )
            current = parent

    def _split(self, node: _Node) -> None:
        t = self._decision_time
        rects = (
            [e.tpbr.rect_at(t) for e in node.entries]
            if node.is_leaf
            else [c.tpbr.rect_at(t) for c in node.children]  # type: ignore[union-attr]
        )
        group_a, group_b = quadratic_split(rects, self.min_entries)
        sibling = _Node(is_leaf=node.is_leaf)
        if node.is_leaf:
            entries = node.entries
            node.entries = [entries[i] for i in group_a]
            sibling.entries = [entries[i] for i in group_b]
            for entry in sibling.entries:
                self._leaf_of_key[entry.key] = sibling
        else:
            children = node.children
            node.children = []
            for i in group_a:
                node.add_child(children[i])
            for i in group_b:
                sibling.add_child(children[i])
        node.recompute_tpbr()
        sibling.recompute_tpbr()

        parent = node.parent
        if parent is None:
            new_root = _Node(is_leaf=False)
            new_root.add_child(node)
            new_root.add_child(sibling)
            new_root.recompute_tpbr()
            self._root = new_root
            return
        parent.add_child(sibling)
        parent.recompute_tpbr()
        if parent.item_count() > self.max_entries:
            self._split(parent)

    def _condense(self, node: _Node) -> None:
        orphans: list[TprEntry] = []
        current = node
        while current.parent is not None:
            parent = current.parent
            if current.item_count() < self.min_entries:
                parent.children.remove(current)
                orphans.extend(self._collect(current))
            else:
                current.recompute_tpbr()
            current = parent
        current.recompute_tpbr()

        while not self._root.is_leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._root.parent = None
        if not self._root.is_leaf and not self._root.children:
            self._root = _Node(is_leaf=True)

        for entry in orphans:
            del self._leaf_of_key[entry.key]
            # Re-insert preserving the original observation.
            leaf = self._choose_leaf(entry.tpbr)
            leaf.entries.append(entry)
            self._leaf_of_key[entry.key] = leaf
            self._grow_path(leaf, entry.tpbr)
            if leaf.item_count() > self.max_entries:
                self._split(leaf)

    def _collect(self, node: _Node) -> list[TprEntry]:
        if node.is_leaf:
            return list(node.entries)
        collected: list[TprEntry] = []
        for child in node.children:
            collected.extend(self._collect(child))
        return collected

    # ------------------------------------------------------------------
    # Invariants (tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Containment at sampled future times + structural soundness."""
        sample_times = (
            self.now,
            self.now + self.horizon / 2,
            self.now + self.horizon,
        )
        self._check_node(self._root, sample_times, is_root=True)
        seen = {
            entry.key
            for leaf in set(self._leaf_of_key.values())
            for entry in leaf.entries
        }
        assert seen == set(self._leaf_of_key), "leaf map out of sync"

    def _check_node(self, node: _Node, times, is_root: bool = False) -> int:
        if not is_root:
            assert node.item_count() >= self.min_entries, "underfull node"
        assert node.item_count() <= self.max_entries, "overfull node"
        if node.is_leaf:
            for entry in node.entries:
                assert node.tpbr is not None
                for t in times:
                    if t >= max(node.tpbr.t_ref, entry.tpbr.t_ref):
                        assert node.tpbr.contains_tpbr_at(entry.tpbr, t)
            return 1
        depths = set()
        for child in node.children:
            assert child.parent is node, "broken parent pointer"
            assert node.tpbr is not None and child.tpbr is not None
            for t in times:
                if t >= max(node.tpbr.t_ref, child.tpbr.t_ref):
                    assert node.tpbr.contains_tpbr_at(child.tpbr, t)
            depths.add(self._check_node(child, times))
        assert len(depths) == 1, "unbalanced tree"
        return depths.pop() + 1
