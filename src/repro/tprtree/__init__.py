"""A Time-Parameterized R-tree (TPR-tree, Saltenis et al., SIGMOD 2000).

The paper's related work positions the TPR-tree as *the* access method
for objects with future trajectories — and criticises it: "there are no
special mechanisms to support the continuous spatio-temporal queries in
any of these access methods."  This package provides the substrate so
that criticism can be measured: a TPR-tree indexes moving points whose
bounding rectangles *expand over time* according to per-node velocity
bounds, answering timeslice and window queries about predicted
positions; the :class:`repro.baselines.TprPredictiveEngine` baseline
then re-evaluates predictive queries against it every cycle, in contrast
to the core engine's incremental predictive maintenance.
"""

from repro.tprtree.tpbr import TimeParameterizedRect
from repro.tprtree.tree import TprEntry, TprTree

__all__ = ["TimeParameterizedRect", "TprTree", "TprEntry"]
