"""An update-memo R-tree for frequent location updates (RUM-tree style).

The paper's setting is update-dominated: "a typical location-aware
server receives a massive amount of updates from moving objects", and
its related work leans on frequent-update R-tree variants (the LUR-tree
with its linked list, the bottom-up FUR-tree with its hash table; the
same group's later RUM-tree generalises both).  The classic R-tree pays
a top-down delete *and* a top-down insert per update; the memo approach
pays only the insert:

* every update inserts a fresh *versioned* entry bottom-right into the
  tree and bumps the object's latest version in the **update memo**;
* stale versions are left in place and filtered out of query results by
  a memo lookup;
* a garbage-collection pass (here: triggered when the stale ratio
  crosses a threshold) physically removes obsolete entries.

Queries therefore stay exact while updates cost one insert, at the
price of temporarily larger trees — the trade the benchmark measures.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.geometry import Point, Rect
from repro.rtree.tree import RTree


class RumTree:
    """An R-tree over moving points with memo-based updates."""

    def __init__(self, max_entries: int = 16, gc_stale_ratio: float = 0.5):
        if not 0.0 < gc_stale_ratio <= 1.0:
            raise ValueError(
                f"gc_stale_ratio must be in (0, 1], got {gc_stale_ratio}"
            )
        self._tree = RTree(max_entries=max_entries)
        self.gc_stale_ratio = gc_stale_ratio
        # The update memo: object id -> latest version number.
        self._latest_version: dict[int, int] = {}
        self._locations: dict[int, Point] = {}
        self._next_version = 0
        self._stale_entries = 0
        self.gc_runs = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of *live* objects (stale versions excluded)."""
        return len(self._latest_version)

    def __contains__(self, oid: int) -> bool:
        return oid in self._latest_version

    @property
    def physical_entry_count(self) -> int:
        """Entries physically in the tree, including stale versions."""
        return len(self._tree)

    @property
    def stale_ratio(self) -> float:
        total = self.physical_entry_count
        return self._stale_entries / total if total else 0.0

    def location_of(self, oid: int) -> Point:
        return self._locations[oid]

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def upsert(self, oid: int, location: Point) -> None:
        """Insert or update ``oid`` at ``location`` — one tree insert.

        The previous version (if any) becomes stale and is filtered by
        the memo until garbage collection removes it.
        """
        if oid in self._latest_version:
            self._stale_entries += 1
        version = self._next_version
        self._next_version += 1
        key = self._encode(oid, version)
        self._tree.insert(key, Rect(location.x, location.y, location.x, location.y))
        self._latest_version[oid] = version
        self._locations[oid] = location
        if self.stale_ratio >= self.gc_stale_ratio:
            self.garbage_collect()

    def delete(self, oid: int) -> None:
        """Logically remove ``oid``; its entry becomes stale."""
        if oid not in self._latest_version:
            raise KeyError(f"object {oid} is not indexed")
        del self._latest_version[oid]
        del self._locations[oid]
        self._stale_entries += 1
        if self.stale_ratio >= self.gc_stale_ratio:
            self.garbage_collect()

    # ------------------------------------------------------------------
    # Queries (memo-filtered)
    # ------------------------------------------------------------------

    def search(self, region: Rect) -> Iterator[int]:
        """Live object ids whose current location is inside ``region``."""
        for entry in self._tree.search(region):
            oid, version = self._decode(entry.key)
            if self._latest_version.get(oid) == version:
                yield oid

    def nearest(self, center: Point, k: int) -> list[int]:
        """The k live objects nearest ``center``.

        Over-fetches from the underlying tree to compensate for stale
        hits, doubling the fetch until k live results are in hand (or
        the tree is exhausted).
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        fetch = max(k * 2, 8)
        while True:
            live: list[int] = []
            hits = self._tree.nearest(center, fetch)
            for entry in hits:
                oid, version = self._decode(entry.key)
                if self._latest_version.get(oid) == version:
                    live.append(oid)
                    if len(live) == k:
                        return live
            if len(hits) < fetch:  # tree exhausted
                return live
            fetch *= 2

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def garbage_collect(self) -> int:
        """Physically drop stale versions; returns how many were removed.

        The RUM-tree proper piggybacks GC on node visits ("vacuum
        cleaner" tokens); a full sweep keeps the semantics while staying
        simple — it is off the per-update critical path either way.
        """
        stale_keys = [
            entry.key
            for entry in self._tree.items()
            if self._latest_version.get(self._decode(entry.key)[0])
            != self._decode(entry.key)[1]
        ]
        for key in stale_keys:
            self._tree.delete(key)
        self._stale_entries = 0
        self.gc_runs += 1
        return len(stale_keys)

    # ------------------------------------------------------------------
    # Key encoding: (oid, version) packed into one int key
    # ------------------------------------------------------------------

    _VERSION_BITS = 40

    def _encode(self, oid: int, version: int) -> int:
        return (oid << self._VERSION_BITS) | version

    def _decode(self, key: int) -> tuple[int, int]:
        return key >> self._VERSION_BITS, key & ((1 << self._VERSION_BITS) - 1)
