"""Sort-Tile-Recursive (STR) bulk loading.

A Q-index over 100K stationary queries should not be built by 100K
one-at-a-time inserts; STR packs the entries into near-full leaves in
O(n log n) and yields a tree with much better node utilisation.
"""

from __future__ import annotations

import math

from repro.geometry import Rect
from repro.rtree.node import LeafEntry, Node
from repro.rtree.tree import RTree


def str_bulk_load(
    items: list[tuple[int, Rect]], max_entries: int = 16
) -> RTree:
    """Build an :class:`RTree` from ``(key, rect)`` pairs using STR.

    Duplicate keys raise ``ValueError``.  The resulting tree honours the
    same invariants as an incrementally built one and supports further
    inserts and deletes.
    """
    keys = [key for key, __ in items]
    if len(set(keys)) != len(keys):
        raise ValueError("duplicate keys in bulk load input")

    tree = RTree(max_entries=max_entries)
    if not items:
        return tree
    if len(items) <= max_entries:
        for key, rect in items:
            tree.insert(key, rect)
        return tree

    leaves = _pack_leaves(items, max_entries)
    level: list[Node] = leaves
    while len(level) > 1:
        level = _pack_level(level, max_entries)
    root = level[0]
    root.parent = None

    tree._root = root
    for leaf in leaves:
        for entry in leaf.entries:
            tree._leaf_of_key[entry.key] = leaf
    return tree


def _pack_leaves(items: list[tuple[int, Rect]], max_entries: int) -> list[Node]:
    """Tile the entries into leaves: sort by center-x, slice into vertical
    strips, sort each strip by center-y, chop into runs of ``max_entries``.
    """
    count = len(items)
    leaf_count = math.ceil(count / max_entries)
    strip_count = math.ceil(math.sqrt(leaf_count))
    per_strip = strip_count * max_entries

    by_x = sorted(items, key=lambda item: item[1].center.x)
    leaves: list[Node] = []
    for start in range(0, count, per_strip):
        strip = sorted(
            by_x[start : start + per_strip], key=lambda item: item[1].center.y
        )
        for leaf_start in range(0, len(strip), max_entries):
            chunk = strip[leaf_start : leaf_start + max_entries]
            leaf = Node(is_leaf=True)
            leaf.entries = [LeafEntry(rect, key) for key, rect in chunk]
            leaf.recompute_rect()
            leaves.append(leaf)
    return _rebalance_tail(leaves, max_entries)


def _pack_level(nodes: list[Node], max_entries: int) -> list[Node]:
    """Pack a level of nodes into parents with the same STR tiling."""
    count = len(nodes)
    parent_count = math.ceil(count / max_entries)
    strip_count = math.ceil(math.sqrt(parent_count))
    per_strip = strip_count * max_entries

    by_x = sorted(nodes, key=lambda n: n.rect.center.x)  # type: ignore[union-attr]
    parents: list[Node] = []
    for start in range(0, count, per_strip):
        strip = sorted(
            by_x[start : start + per_strip],
            key=lambda n: n.rect.center.y,  # type: ignore[union-attr]
        )
        for parent_start in range(0, len(strip), max_entries):
            parent = Node(is_leaf=False)
            for child in strip[parent_start : parent_start + max_entries]:
                parent.add_child(child)
            parent.recompute_rect()
            parents.append(parent)
    return _rebalance_tail(parents, max_entries)


def _rebalance_tail(nodes: list[Node], max_entries: int) -> list[Node]:
    """Ensure the last node is not underfull by borrowing from its sibling.

    STR chopping can leave a final node with fewer than ``min_entries``
    items; moving items over from the previous (full) node restores the
    R-tree minimum-fill invariant without a rebuild.
    """
    if len(nodes) < 2:
        return nodes
    min_fill = max_entries // 2
    last, prev = nodes[-1], nodes[-2]
    deficit = min_fill - last.item_count()
    if deficit <= 0:
        return nodes
    if last.is_leaf:
        moved = prev.entries[-deficit:]
        prev.entries = prev.entries[:-deficit]
        last.entries = moved + last.entries
    else:
        moved_children = prev.children[-deficit:]
        prev.children = prev.children[:-deficit]
        for child in moved_children:
            child.parent = last
        last.children = moved_children + last.children
    prev.recompute_rect()
    last.recompute_rect()
    return nodes
