"""The R-tree proper: insert, delete, range search, best-first k-NN."""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Iterator
from dataclasses import dataclass

from repro.geometry import Point, Rect
from repro.rtree.node import LeafEntry, Node, choose_subtree, quadratic_split


@dataclass(frozen=True, slots=True)
class RTreeEntry:
    """A search hit: the indexed rectangle and its payload key."""

    rect: Rect
    key: int


class RTree:
    """A Guttman R-tree over ``(Rect, key)`` pairs.

    ``max_entries`` is the node capacity M; ``min_entries`` defaults to
    ``M // 2`` (Guttman's m).  Keys must be unique; re-inserting an
    existing key raises so silent duplicates never corrupt a Q-index.
    """

    def __init__(self, max_entries: int = 16, min_entries: int | None = None):
        if max_entries < 4:
            raise ValueError(f"max_entries must be >= 4, got {max_entries}")
        self.max_entries = max_entries
        self.min_entries = (
            min_entries if min_entries is not None else max_entries // 2
        )
        if not 1 <= self.min_entries <= self.max_entries // 2:
            raise ValueError(
                f"min_entries {self.min_entries} must be in "
                f"[1, {self.max_entries // 2}]"
            )
        self._root: Node = Node(is_leaf=True)
        self._leaf_of_key: dict[int, Node] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._leaf_of_key)

    def __contains__(self, key: int) -> bool:
        return key in self._leaf_of_key

    @property
    def height(self) -> int:
        """Number of levels (a lone leaf root has height 1)."""
        levels = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            levels += 1
        return levels

    def rect_of(self, key: int) -> Rect:
        """The rectangle currently indexed under ``key``."""
        leaf = self._leaf_of_key[key]
        for entry in leaf.entries:
            if entry.key == key:
                return entry.rect
        raise KeyError(key)  # pragma: no cover - leaf map is authoritative

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------

    def insert(self, key: int, rect: Rect) -> None:
        """Index ``rect`` under ``key``."""
        if key in self._leaf_of_key:
            raise KeyError(f"key {key} already indexed")
        leaf = self._choose_leaf(rect)
        leaf.entries.append(LeafEntry(rect, key))
        self._leaf_of_key[key] = leaf
        self._grow_path(leaf, rect)
        if leaf.item_count() > self.max_entries:
            self._split_node(leaf)

    def update(self, key: int, rect: Rect) -> None:
        """Re-index an existing ``key`` at a new rectangle."""
        self.delete(key)
        self.insert(key, rect)

    def _choose_leaf(self, rect: Rect) -> Node:
        node = self._root
        while not node.is_leaf:
            node = choose_subtree(node, rect)
        return node

    def _grow_path(self, node: Node, rect: Rect) -> None:
        """Widen MBRs from ``node`` to the root to also cover ``rect``."""
        current: Node | None = node
        while current is not None:
            current.rect = rect if current.rect is None else current.rect.union(rect)
            current = current.parent

    def _split_node(self, node: Node) -> None:
        rects = (
            [e.rect for e in node.entries]
            if node.is_leaf
            else [c.rect for c in node.children]  # type: ignore[misc]
        )
        group_a, group_b = quadratic_split(rects, self.min_entries)

        sibling = Node(is_leaf=node.is_leaf)
        if node.is_leaf:
            entries = node.entries
            node.entries = [entries[i] for i in group_a]
            sibling.entries = [entries[i] for i in group_b]
            for entry in sibling.entries:
                self._leaf_of_key[entry.key] = sibling
        else:
            children = node.children
            node.children = []
            for i in group_a:
                node.add_child(children[i])
            for i in group_b:
                sibling.add_child(children[i])
        node.recompute_rect()
        sibling.recompute_rect()

        parent = node.parent
        if parent is None:
            # Root split: the tree grows a level.
            new_root = Node(is_leaf=False)
            new_root.add_child(node)
            new_root.add_child(sibling)
            new_root.recompute_rect()
            self._root = new_root
            return
        parent.add_child(sibling)
        parent.recompute_rect()
        if parent.item_count() > self.max_entries:
            self._split_node(parent)

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------

    def delete(self, key: int) -> None:
        """Remove ``key`` from the index, condensing the tree as needed."""
        leaf = self._leaf_of_key.pop(key)
        leaf.entries = [e for e in leaf.entries if e.key != key]
        self._condense(leaf)

    def _condense(self, node: Node) -> None:
        """Guttman's CondenseTree: drop underfull nodes, re-insert orphans."""
        orphans: list[LeafEntry] = []
        current = node
        while current.parent is not None:
            parent = current.parent
            if current.item_count() < self.min_entries:
                parent.children.remove(current)
                orphans.extend(self._collect_entries(current))
            else:
                current.recompute_rect()
            current = parent
        current.recompute_rect()

        # Shrink a root that lost all but one child.
        while not self._root.is_leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]
            self._root.parent = None
        if not self._root.is_leaf and not self._root.children:
            self._root = Node(is_leaf=True)

        for entry in orphans:
            # Orphans re-enter through the normal insert path.
            del self._leaf_of_key[entry.key]
            self.insert(entry.key, entry.rect)

    def _collect_entries(self, node: Node) -> list[LeafEntry]:
        if node.is_leaf:
            return list(node.entries)
        collected: list[LeafEntry] = []
        for child in node.children:
            collected.extend(self._collect_entries(child))
        return collected

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search(self, rect: Rect) -> Iterator[RTreeEntry]:
        """All entries whose rectangle intersects ``rect``."""
        if self._root.rect is None or not self._root.rect.intersects(rect):
            return
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for entry in node.entries:
                    if entry.rect.intersects(rect):
                        yield RTreeEntry(entry.rect, entry.key)
            else:
                for child in node.children:
                    if child.rect is not None and child.rect.intersects(rect):
                        stack.append(child)

    def search_point(self, p: Point) -> Iterator[RTreeEntry]:
        """All entries whose rectangle contains point ``p``.

        This is the Q-index probe: a moving object asks which query
        rectangles it currently satisfies.
        """
        point_rect = Rect(p.x, p.y, p.x, p.y)
        yield from self.search(point_rect)

    def nearest(self, p: Point, k: int = 1) -> list[RTreeEntry]:
        """The ``k`` entries nearest to ``p`` by rectangle MINDIST.

        Classic best-first search (Hjaltason & Samet): a priority queue
        mixes nodes and entries keyed by their minimum distance to ``p``;
        entries pop in true distance order.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        results: list[RTreeEntry] = []
        if self._root.rect is None:
            return results
        counter = itertools.count()  # tie-break so heapq never compares nodes
        heap: list[tuple[float, int, object]] = [
            (self._root.rect.min_distance_to_point(p), next(counter), self._root)
        ]
        while heap and len(results) < k:
            __, __, item = heapq.heappop(heap)
            if isinstance(item, RTreeEntry):
                results.append(item)
            elif isinstance(item, Node):
                if item.is_leaf:
                    for entry in item.entries:
                        heapq.heappush(
                            heap,
                            (
                                entry.rect.min_distance_to_point(p),
                                next(counter),
                                RTreeEntry(entry.rect, entry.key),
                            ),
                        )
                else:
                    for child in item.children:
                        if child.rect is not None:
                            heapq.heappush(
                                heap,
                                (
                                    child.rect.min_distance_to_point(p),
                                    next(counter),
                                    child,
                                ),
                            )
        return results

    def items(self) -> Iterator[RTreeEntry]:
        """All indexed entries, in arbitrary order."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                for entry in node.entries:
                    yield RTreeEntry(entry.rect, entry.key)
            else:
                stack.extend(node.children)

    # ------------------------------------------------------------------
    # Invariant checking (used by tests)
    # ------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if structural invariants are violated."""
        self._check_node(self._root, is_root=True)
        seen = {entry.key for entry in self.items()}
        assert seen == set(self._leaf_of_key), "leaf map out of sync"

    def _check_node(self, node: Node, is_root: bool = False) -> int:
        if not is_root:
            assert node.item_count() >= self.min_entries, "underfull node"
        assert node.item_count() <= self.max_entries, "overfull node"
        if node.is_leaf:
            for entry in node.entries:
                assert node.rect is not None
                assert node.rect.contains_rect(entry.rect), "leaf MBR too small"
            return 1
        depths = set()
        for child in node.children:
            assert child.parent is node, "broken parent pointer"
            assert node.rect is not None and child.rect is not None
            assert node.rect.contains_rect(child.rect), "inner MBR too small"
            depths.add(self._check_node(child))
        assert len(depths) == 1, "unbalanced tree"
        return depths.pop() + 1
