"""R-tree node structures and the quadratic split heuristic."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.geometry import Rect


@dataclass(slots=True)
class LeafEntry:
    """A data entry: a bounding rectangle plus an opaque payload key."""

    rect: Rect
    key: int


@dataclass(slots=True)
class Node:
    """An R-tree node.

    Leaf nodes hold :class:`LeafEntry` items in ``entries``; internal
    nodes hold child :class:`Node` items in ``children``.  ``rect`` is
    the minimum bounding rectangle of the node's contents and is kept up
    to date by the tree operations.
    """

    is_leaf: bool
    rect: Optional[Rect] = None
    entries: list[LeafEntry] = field(default_factory=list)
    children: list["Node"] = field(default_factory=list)
    parent: Optional["Node"] = None

    def item_count(self) -> int:
        return len(self.entries) if self.is_leaf else len(self.children)

    def recompute_rect(self) -> None:
        """Recompute the MBR from the node's current contents."""
        rects = (
            [e.rect for e in self.entries]
            if self.is_leaf
            else [c.rect for c in self.children if c.rect is not None]
        )
        if not rects:
            self.rect = None
            return
        mbr = rects[0]
        for r in rects[1:]:
            mbr = mbr.union(r)
        self.rect = mbr

    def add_child(self, child: "Node") -> None:
        self.children.append(child)
        child.parent = self


def _enlargement(mbr: Rect, rect: Rect) -> float:
    """Area growth of ``mbr`` needed to also cover ``rect``."""
    return mbr.union(rect).area - mbr.area


def choose_subtree(node: Node, rect: Rect) -> Node:
    """Guttman's ChooseLeaf step: least enlargement, ties by least area."""
    best = None
    best_key = None
    for child in node.children:
        assert child.rect is not None
        key = (_enlargement(child.rect, rect), child.rect.area)
        if best_key is None or key < best_key:
            best, best_key = child, key
    assert best is not None
    return best


def quadratic_split(
    rects: list[Rect], min_fill: int
) -> tuple[list[int], list[int]]:
    """Guttman's quadratic split over a list of rectangles.

    Returns two disjoint index lists partitioning ``range(len(rects))``,
    each with at least ``min_fill`` members.  The seeds are the pair
    whose combined MBR wastes the most area; remaining items are assigned
    one at a time to the group whose MBR they enlarge least, with the
    classic forced-assignment rule when a group must absorb all leftovers
    to reach minimum fill.
    """
    count = len(rects)
    if count < 2 * min_fill:
        raise ValueError(
            f"cannot split {count} items with minimum fill {min_fill}"
        )

    # PickSeeds: the most wasteful pair.
    seed_a, seed_b, worst_waste = 0, 1, float("-inf")
    for i in range(count):
        for j in range(i + 1, count):
            waste = rects[i].union(rects[j]).area - rects[i].area - rects[j].area
            if waste > worst_waste:
                seed_a, seed_b, worst_waste = i, j, waste

    group_a, group_b = [seed_a], [seed_b]
    mbr_a, mbr_b = rects[seed_a], rects[seed_b]
    remaining = [i for i in range(count) if i != seed_a and i != seed_b]

    while remaining:
        # Forced assignment when one group must take everything left.
        if len(group_a) + len(remaining) == min_fill:
            group_a.extend(remaining)
            break
        if len(group_b) + len(remaining) == min_fill:
            group_b.extend(remaining)
            break

        # PickNext: the item with the greatest preference between groups.
        best_idx, best_diff = 0, float("-inf")
        for pos, idx in enumerate(remaining):
            d_a = _enlargement(mbr_a, rects[idx])
            d_b = _enlargement(mbr_b, rects[idx])
            diff = abs(d_a - d_b)
            if diff > best_diff:
                best_idx, best_diff = pos, diff
        idx = remaining.pop(best_idx)

        d_a = _enlargement(mbr_a, rects[idx])
        d_b = _enlargement(mbr_b, rects[idx])
        if d_a < d_b or (d_a == d_b and mbr_a.area <= mbr_b.area):
            group_a.append(idx)
            mbr_a = mbr_a.union(rects[idx])
        else:
            group_b.append(idx)
            mbr_b = mbr_b.union(rects[idx])

    return group_a, group_b
