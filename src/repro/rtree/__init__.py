"""An in-memory R-tree (Guttman, SIGMOD 1984).

The paper's main baseline for shared continuous-query processing, the
Q-index, "build[s] an R-tree-like index structure on the queries instead
of the objects"; moving objects then probe the index each evaluation
cycle.  This package provides that substrate: a classic R-tree with
quadratic node splitting, deletion with tree condensation, rectangle
range search, best-first k-nearest-neighbour search, and Sort-Tile-
Recursive (STR) bulk loading for building an index over a large static
query population in one pass.
"""

from repro.rtree.tree import RTree, RTreeEntry
from repro.rtree.bulk import str_bulk_load
from repro.rtree.rum import RumTree

__all__ = ["RTree", "RTreeEntry", "str_bulk_load", "RumTree"]
