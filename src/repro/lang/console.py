"""An interactive console over the full command language.

The :class:`~repro.lang.binder.Binder` handles query-management
commands; the console adds the object stream, evaluation control and
inspection statements, turning the language into a self-contained way
to drive (and script) an engine — see ``examples/query_console.py`` and
the scenario files in the tests.
"""

from __future__ import annotations

from repro.core.engine import IncrementalEngine
from repro.geometry import Velocity
from repro.lang.ast import (
    Command,
    Evaluate,
    RemoveObject,
    ReportObject,
    ShowAnswer,
    ShowObjects,
    ShowQueries,
)
from repro.lang.binder import Binder
from repro.lang.parser import parse


class Console:
    """Executes command lines against one engine; returns output text."""

    def __init__(self, engine: IncrementalEngine | None = None):
        self.engine = engine if engine is not None else IncrementalEngine()
        self.binder = Binder(self.engine)

    def run(self, line: str) -> str:
        """Parse and execute one line; returns the printable result."""
        return self.execute(parse(line))

    def run_script(self, source: str) -> list[str]:
        """Run a multi-line script; returns one output string per command
        (blank lines and ``--`` comments are skipped)."""
        outputs = []
        for raw in source.splitlines():
            stripped = raw.split("--", 1)[0].strip()
            if stripped:
                outputs.append(self.run(stripped))
        return outputs

    def execute(self, command: Command) -> str:
        if isinstance(command, ReportObject):
            velocity = (
                Velocity(command.velocity.x, command.velocity.y)
                if command.velocity is not None
                else Velocity.ZERO
            )
            self.engine.report_object(
                command.oid, command.location, self.engine.now, velocity
            )
            return f"object {command.oid} buffered"
        if isinstance(command, RemoveObject):
            self.engine.remove_object(command.oid)
            return f"object {command.oid} removal buffered"
        if isinstance(command, Evaluate):
            updates = self.engine.evaluate(command.at)
            if not updates:
                return "no updates"
            return "\n".join(str(update) for update in updates)
        if isinstance(command, ShowAnswer):
            qid = self.binder.qid_of(command.name)
            members = sorted(self.engine.answer_of(qid))
            return f"{command.name}: {members}"
        if isinstance(command, ShowQueries):
            if not self.binder.names():
                return "no queries registered"
            return "\n".join(
                f"{name} (qid {self.binder.qid_of(name)})"
                for name in self.binder.names()
            )
        if isinstance(command, ShowObjects):
            count = self.engine.object_count
            return f"{count} objects tracked"
        # Query-management commands go through the binder.
        qid = self.binder.execute(command)
        return f"ok (qid {qid})"
