"""Executes parsed commands against an engine.

The binder owns the mapping from human-readable query names to the
integer ids the engine uses, and dispatches moves to the right engine
entry point based on the registered query's kind.
"""

from __future__ import annotations

from repro.core.engine import IncrementalEngine
from repro.core.state import QueryKind
from repro.lang.ast import (
    Command,
    MoveQuery,
    RegisterKnn,
    RegisterPredictive,
    RegisterRange,
    Unregister,
)


class BindError(ValueError):
    """Raised for semantically invalid commands (unknown names, etc.)."""


class Binder:
    """Name resolution + execution of commands on one engine."""

    def __init__(self, engine: IncrementalEngine, first_qid: int = 1_000_000):
        self.engine = engine
        self._next_qid = first_qid
        self._qid_of_name: dict[str, int] = {}
        self._kind_of_name: dict[str, QueryKind] = {}

    def qid_of(self, name: str) -> int:
        try:
            return self._qid_of_name[name]
        except KeyError:
            raise BindError(f"unknown query name {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._qid_of_name)

    def execute(self, command: Command, t: float | None = None) -> int | None:
        """Run one command; returns the affected qid (None never happens
        for current commands, but future statements may be pure).
        Registration and movement are *buffered* like every other input:
        call ``engine.evaluate`` to make them take effect.
        """
        when = t if t is not None else self.engine.now
        if isinstance(command, RegisterRange):
            qid = self._allocate(command.name, QueryKind.RANGE)
            self.engine.register_range_query(qid, command.region, when)
            return qid
        if isinstance(command, RegisterKnn):
            qid = self._allocate(command.name, QueryKind.KNN)
            self.engine.register_knn_query(qid, command.center, command.k, when)
            return qid
        if isinstance(command, RegisterPredictive):
            qid = self._allocate(command.name, QueryKind.PREDICTIVE_RANGE)
            self.engine.register_predictive_query(
                qid, command.region, command.horizon, when
            )
            return qid
        if isinstance(command, MoveQuery):
            return self._move(command, when)
        if isinstance(command, Unregister):
            qid = self.qid_of(command.name)
            self.engine.unregister_query(qid)
            del self._qid_of_name[command.name]
            del self._kind_of_name[command.name]
            return qid
        raise BindError(f"unsupported command {command!r}")

    def run_program(self, source: str, t: float | None = None) -> list[int]:
        """Parse and execute a multi-line program; returns affected qids."""
        from repro.lang.parser import parse_program

        return [
            qid
            for command in parse_program(source)
            if (qid := self.execute(command, t)) is not None
        ]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _allocate(self, name: str, kind: QueryKind) -> int:
        if name in self._qid_of_name:
            raise BindError(f"query name {name!r} is already registered")
        qid = self._next_qid
        self._next_qid += 1
        self._qid_of_name[name] = qid
        self._kind_of_name[name] = kind
        return qid

    def _move(self, command: MoveQuery, when: float) -> int:
        qid = self.qid_of(command.name)
        kind = self._kind_of_name[command.name]
        if kind is QueryKind.KNN:
            if command.center is None:
                raise BindError(
                    f"{command.name!r} is a KNN query; move it with AT (x, y)"
                )
            self.engine.move_knn_query(qid, command.center, when)
        else:
            if command.region is None:
                raise BindError(
                    f"{command.name!r} is a region query; move it with REGION"
                )
            if kind is QueryKind.RANGE:
                self.engine.move_range_query(qid, command.region, when)
            else:
                self.engine.move_predictive_query(qid, command.region, when)
        return qid
