"""Command objects the parser produces."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Point, Rect


class Command:
    """Base class for parsed commands."""


@dataclass(frozen=True, slots=True)
class RegisterRange(Command):
    name: str
    region: Rect


@dataclass(frozen=True, slots=True)
class RegisterKnn(Command):
    name: str
    k: int
    center: Point


@dataclass(frozen=True, slots=True)
class RegisterPredictive(Command):
    name: str
    region: Rect
    horizon: float


@dataclass(frozen=True, slots=True)
class MoveQuery(Command):
    """Move a registered query: a new REGION or a new AT focal point."""

    name: str
    region: Rect | None = None
    center: Point | None = None


@dataclass(frozen=True, slots=True)
class Unregister(Command):
    name: str


@dataclass(frozen=True, slots=True)
class ReportObject(Command):
    """Feed one object location (and optional velocity) to the engine."""

    oid: int
    location: Point
    velocity: Point | None = None  # parsed as a coordinate pair


@dataclass(frozen=True, slots=True)
class RemoveObject(Command):
    oid: int


@dataclass(frozen=True, slots=True)
class Evaluate(Command):
    """Run one bulk evaluation, optionally advancing the clock."""

    at: float | None = None


@dataclass(frozen=True, slots=True)
class ShowAnswer(Command):
    name: str


@dataclass(frozen=True, slots=True)
class ShowQueries(Command):
    pass


@dataclass(frozen=True, slots=True)
class ShowObjects(Command):
    pass
