"""A small declarative front end for registering continuous queries.

The paper plans to "realize our spatio-temporal query processor inside
the Predator database management system" — i.e. behind a declarative
interface.  This package provides that face for the reproduction: a
line-oriented command language, e.g. ::

    REGISTER RANGE QUERY downtown REGION (0.40, 0.40, 0.45, 0.45)
    REGISTER KNN QUERY cabs K 3 AT (0.5, 0.5)
    REGISTER PREDICTIVE QUERY airspace REGION (0.1, 0.1, 0.2, 0.2) WITHIN 30
    MOVE QUERY downtown REGION (0.41, 0.40, 0.46, 0.45)
    UNREGISTER QUERY cabs

parsed into command objects and bound to a running engine with
human-readable query names mapped onto integer ids.
"""

from repro.lang.lexer import Token, TokenKind, tokenize, LexError
from repro.lang.ast import (
    Command,
    Evaluate,
    MoveQuery,
    RegisterKnn,
    RegisterPredictive,
    RegisterRange,
    RemoveObject,
    ReportObject,
    ShowAnswer,
    ShowObjects,
    ShowQueries,
    Unregister,
)
from repro.lang.parser import ParseError, parse, parse_program
from repro.lang.binder import Binder
from repro.lang.console import Console

__all__ = [
    "Token",
    "TokenKind",
    "tokenize",
    "LexError",
    "Command",
    "RegisterRange",
    "RegisterKnn",
    "RegisterPredictive",
    "MoveQuery",
    "Unregister",
    "ReportObject",
    "RemoveObject",
    "Evaluate",
    "ShowAnswer",
    "ShowQueries",
    "ShowObjects",
    "ParseError",
    "parse",
    "parse_program",
    "Binder",
    "Console",
]
