"""Recursive-descent parser for the command language.

Grammar (keywords are case-insensitive)::

    command    := register | move | unregister | report | remove
                | evaluate | show
    register   := REGISTER RANGE QUERY name region_clause
                | REGISTER KNN QUERY name K int AT point
                | REGISTER PREDICTIVE QUERY name region_clause
                  WITHIN number [SECONDS]
    move       := MOVE QUERY name ( region_clause | AT point )
    unregister := UNREGISTER QUERY name
    report     := REPORT OBJECT int AT point [VELOCITY point]
    remove     := REMOVE OBJECT int
    evaluate   := EVALUATE [AT number]
    show       := SHOW ANSWER name | SHOW QUERIES | SHOW OBJECTS
    region_clause := REGION ( num , num , num , num )
    point         := ( num , num )
"""

from __future__ import annotations

from repro.geometry import Point, Rect
from repro.lang.ast import (
    Command,
    Evaluate,
    MoveQuery,
    RegisterKnn,
    RegisterPredictive,
    RegisterRange,
    RemoveObject,
    ReportObject,
    ShowAnswer,
    ShowObjects,
    ShowQueries,
    Unregister,
)
from repro.lang.lexer import Token, TokenKind, tokenize


class ParseError(ValueError):
    """Raised on syntactically invalid commands."""


def parse(source: str) -> Command:
    """Parse one command line."""
    return _Parser(tokenize(source), source).command()


def parse_program(source: str) -> list[Command]:
    """Parse a multi-line program, skipping blanks and ``--`` comments."""
    commands: list[Command] = []
    for line in source.splitlines():
        stripped = line.split("--", 1)[0].strip()
        if stripped:
            commands.append(parse(stripped))
    return commands


class _Parser:
    def __init__(self, tokens: list[Token], source: str):
        self._tokens = tokens
        self._source = source
        self._pos = 0

    # -- token helpers -------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def _expect(self, kind: TokenKind) -> Token:
        token = self._next()
        if token.kind is not kind:
            raise ParseError(
                f"expected {kind.value} but found {token.text!r} "
                f"at {token.position} in {self._source!r}"
            )
        return token

    def _keyword(self, *options: str) -> str:
        token = self._expect(TokenKind.WORD)
        word = token.text.upper()
        if word not in options:
            raise ParseError(
                f"expected one of {options} but found {token.text!r} "
                f"at {token.position} in {self._source!r}"
            )
        return word

    def _name(self) -> str:
        return self._expect(TokenKind.WORD).text

    def _number(self) -> float:
        return self._expect(TokenKind.NUMBER).number

    def _int(self) -> int:
        value = self._number()
        if value != int(value):
            raise ParseError(f"expected an integer, found {value}")
        return int(value)

    # -- grammar -------------------------------------------------------

    def command(self) -> Command:
        verb = self._keyword(
            "REGISTER", "MOVE", "UNREGISTER", "REPORT", "REMOVE",
            "EVALUATE", "SHOW",
        )
        if verb == "REGISTER":
            result = self._register()
        elif verb == "MOVE":
            result = self._move()
        elif verb == "UNREGISTER":
            self._keyword("QUERY")
            result = Unregister(self._name())
        elif verb == "REPORT":
            result = self._report()
        elif verb == "REMOVE":
            self._keyword("OBJECT")
            result = RemoveObject(self._int())
        elif verb == "EVALUATE":
            result = self._evaluate()
        else:
            result = self._show()
        self._expect(TokenKind.END)
        return result

    def _report(self) -> Command:
        self._keyword("OBJECT")
        oid = self._int()
        self._keyword("AT")
        location = self._point()
        velocity = None
        if self._peek().kind is TokenKind.WORD:
            self._keyword("VELOCITY")
            velocity = self._point()
        return ReportObject(oid, location, velocity)

    def _evaluate(self) -> Command:
        if self._peek().kind is TokenKind.WORD:
            self._keyword("AT")
            return Evaluate(at=self._number())
        return Evaluate()

    def _show(self) -> Command:
        what = self._keyword("ANSWER", "QUERIES", "OBJECTS")
        if what == "ANSWER":
            return ShowAnswer(self._name())
        if what == "QUERIES":
            return ShowQueries()
        return ShowObjects()

    def _register(self) -> Command:
        kind = self._keyword("RANGE", "KNN", "PREDICTIVE")
        self._keyword("QUERY")
        name = self._name()
        if kind == "RANGE":
            return RegisterRange(name, self._region_clause())
        if kind == "KNN":
            self._keyword("K")
            k = self._int()
            if k <= 0:
                raise ParseError(f"K must be positive, got {k}")
            self._keyword("AT")
            return RegisterKnn(name, k, self._point())
        region = self._region_clause()
        self._keyword("WITHIN")
        horizon = self._number()
        if horizon <= 0:
            raise ParseError(f"WITHIN horizon must be positive, got {horizon}")
        if self._peek().kind is TokenKind.WORD:
            self._keyword("SECONDS")
        return RegisterPredictive(name, region, horizon)

    def _move(self) -> Command:
        self._keyword("QUERY")
        name = self._name()
        word = self._keyword("REGION", "AT")
        if word == "REGION":
            return MoveQuery(name, region=self._region_body())
        return MoveQuery(name, center=self._point())

    def _region_clause(self) -> Rect:
        self._keyword("REGION")
        return self._region_body()

    def _region_body(self) -> Rect:
        self._expect(TokenKind.LPAREN)
        min_x = self._number()
        self._expect(TokenKind.COMMA)
        min_y = self._number()
        self._expect(TokenKind.COMMA)
        max_x = self._number()
        self._expect(TokenKind.COMMA)
        max_y = self._number()
        self._expect(TokenKind.RPAREN)
        if min_x > max_x or min_y > max_y:
            raise ParseError(
                f"degenerate region ({min_x}, {min_y}, {max_x}, {max_y})"
            )
        return Rect(min_x, min_y, max_x, max_y)

    def _point(self) -> Point:
        self._expect(TokenKind.LPAREN)
        x = self._number()
        self._expect(TokenKind.COMMA)
        y = self._number()
        self._expect(TokenKind.RPAREN)
        return Point(x, y)
