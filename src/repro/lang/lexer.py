"""Tokeniser for the continuous-query command language."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class LexError(ValueError):
    """Raised on characters the language does not know."""


class TokenKind(enum.Enum):
    WORD = "word"  # keywords and identifiers
    NUMBER = "number"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    END = "end"


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokenKind
    text: str
    position: int

    @property
    def number(self) -> float:
        if self.kind is not TokenKind.NUMBER:
            raise ValueError(f"token {self.text!r} is not a number")
        return float(self.text)


_PUNCTUATION = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ",": TokenKind.COMMA,
}


def tokenize(source: str) -> list[Token]:
    """Tokens of one command line, ending with an END sentinel."""
    tokens: list[Token] = []
    i = 0
    length = len(source)
    while i < length:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if ch in _PUNCTUATION:
            tokens.append(Token(_PUNCTUATION[ch], ch, i))
            i += 1
            continue
        if ch.isdigit() or ch in "+-." and _starts_number(source, i):
            start = i
            i += 1
            while i < length and (source[i].isdigit() or source[i] in ".eE+-"):
                # Only allow +/- immediately after an exponent marker.
                if source[i] in "+-" and source[i - 1] not in "eE":
                    break
                i += 1
            text = source[start:i]
            try:
                float(text)
            except ValueError:
                raise LexError(f"malformed number {text!r} at {start}") from None
            tokens.append(Token(TokenKind.NUMBER, text, start))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (source[i].isalnum() or source[i] in "_-"):
                i += 1
            tokens.append(Token(TokenKind.WORD, source[start:i], start))
            continue
        raise LexError(f"unexpected character {ch!r} at {i}")
    tokens.append(Token(TokenKind.END, "", length))
    return tokens


def _starts_number(source: str, i: int) -> bool:
    ch = source[i]
    if ch.isdigit():
        return True
    return ch in "+-." and i + 1 < len(source) and (
        source[i + 1].isdigit() or source[i + 1] == "."
    )
