#!/usr/bin/env python
"""Forbid ad-hoc wall-clock reads in the engine tree.

The observability plane (``repro.obs``) owns time: spans come from the
tracer's clock, staleness from the freshness tracker's stamps, and the
flight recorder's envelope from its own monotonic source.  A stray
``time.time()`` or ``perf_counter()`` elsewhere in ``src/repro/``
creates a second, unsynchronized notion of "now" that the exporters
cannot correlate — the class of bug this PR's freshness work exists to
kill.

This checker walks ``src/repro/`` (excluding ``repro/obs/``), parses
each module, and flags any call to the :mod:`time` module's clock
readers::

    time(), perf_counter(), monotonic(), process_time(), thread_time()
    (and their ``_ns`` variants), via any import alias

A deliberate exception is annotated in place::

    started = perf_counter()  # timing: allowed — crosses process boundary

Usage (CI runs it with no arguments)::

    python tools/check_timing.py [root ...]

Exit status 1 if any unannotated clock read is found.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Clock-reading callables in the stdlib ``time`` module.
CLOCK_READERS = frozenset(
    name + suffix
    for name in (
        "time",
        "perf_counter",
        "monotonic",
        "process_time",
        "thread_time",
    )
    for suffix in ("", "_ns")
)

PRAGMA = "# timing: allowed"

#: The one subtree allowed to read clocks directly.
EXEMPT_PARTS = ("obs",)

DEFAULT_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


class _ClockCallFinder(ast.NodeVisitor):
    """Collects (line, call-text) for every time-module clock read."""

    def __init__(self) -> None:
        #: Local aliases of the ``time`` module itself (``import time``,
        #: ``import time as t``).
        self.module_aliases: set[str] = set()
        #: Local names bound to clock readers (``from time import
        #: perf_counter [as pc]``).
        self.reader_aliases: dict[str, str] = {}
        self.findings: list[tuple[int, str]] = []

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "time":
                self.module_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time" and node.level == 0:
            for alias in node.names:
                if alias.name in CLOCK_READERS:
                    self.reader_aliases[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self.module_aliases
            and func.attr in CLOCK_READERS
        ):
            self.findings.append((node.lineno, f"time.{func.attr}()"))
        elif isinstance(func, ast.Name) and func.id in self.reader_aliases:
            self.findings.append(
                (node.lineno, f"{self.reader_aliases[func.id]}()")
            )
        self.generic_visit(node)


def is_exempt(path: Path, root: Path) -> bool:
    relative = path.relative_to(root)
    return bool(set(relative.parts[:-1]) & set(EXEMPT_PARTS))


def check_file(path: Path) -> list[str]:
    """Unannotated clock reads in one module, as ``line:call`` strings."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    finder = _ClockCallFinder()
    finder.visit(tree)
    if not finder.findings:
        return []
    lines = source.splitlines()
    problems = []
    for lineno, call in finder.findings:
        line = lines[lineno - 1] if lineno <= len(lines) else ""
        if PRAGMA in line:
            continue
        problems.append(f"{lineno}: {call}")
    return problems


def check_tree(root: Path) -> list[str]:
    """All violations under ``root``, as ``path:line: message`` strings."""
    violations = []
    for path in sorted(root.rglob("*.py")):
        if is_exempt(path, root):
            continue
        for problem in check_file(path):
            violations.append(f"{path}:{problem}")
    return violations


def main(argv: list[str] | None = None) -> int:
    roots = [Path(arg) for arg in (argv if argv is not None else sys.argv[1:])]
    if not roots:
        roots = [DEFAULT_ROOT]
    violations = []
    for root in roots:
        if not root.exists():
            print(f"check_timing: no such path: {root}", file=sys.stderr)
            return 2
        violations.extend(check_tree(root))
    for violation in violations:
        print(
            f"{violation} — clocks belong to repro.obs; route timing "
            f"through the tracer/freshness plane or annotate with "
            f"'{PRAGMA} — <why>'"
        )
    if violations:
        print(f"\n{len(violations)} ad-hoc clock read(s) found")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
